"""Byte-for-byte parity: run_scenario vs the seed (pre-refactor) drivers.

The figure3/figure4/table6 drivers were re-founded on
:func:`repro.scenarios.run_scenario`; these tests re-run the *seed* logic
(hand-wired attacks and defense fits, copied verbatim from the pre-refactor
drivers) on the same context and assert the scenario-produced numbers and
renderings are identical under float64.
"""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack
from repro.attacks.transfer import TransferAttack
from repro.config import TINY_PROFILE
from repro.evaluation.security_curve import (
    gamma_sweep,
    paper_gamma_grid,
    paper_theta_grid,
    theta_sweep,
)
from repro.experiments import figure3_whitebox, figure4_greybox, table6_defense
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def parity_context():
    """A float64-pinned tiny context shared by driver and seed-equivalent runs."""
    return ExperimentContext(scale=TINY_PROFILE, seed=123, dtype="float64")


def _curves_identical(actual, expected):
    assert actual.swept_parameter == expected.swept_parameter
    assert actual.attack_name == expected.attack_name
    assert len(actual.points) == len(expected.points)
    for got, want in zip(actual.points, expected.points):
        assert got.theta == want.theta and got.gamma == want.gamma
        assert got.n_perturbed_features == want.n_perturbed_features
        assert got.detection_rates == want.detection_rates
        assert got.evaded_counts == want.evaded_counts
        assert got.mean_l2_distance == want.mean_l2_distance


class TestFigure3Parity:
    def test_scenario_run_matches_seed_driver(self, parity_context):
        context = parity_context
        result = figure3_whitebox.run(context)

        # Seed-equivalent computation (pre-refactor figure3_whitebox.run).
        target = context.target_model
        malware = context.attack_malware
        models = {"target": target.network}
        gamma_grid = paper_gamma_grid(context.scale.sweep_points_gamma)
        theta_grid = paper_theta_grid(context.scale.sweep_points_theta)
        gamma_curve = gamma_sweep(
            lambda constraints: JsmaAttack(target.network, constraints=constraints),
            malware.features, models, theta=0.1, gamma_values=gamma_grid)
        theta_curve = theta_sweep(
            lambda constraints: JsmaAttack(target.network, constraints=constraints),
            malware.features, models, gamma=0.025, theta_values=theta_grid)
        random_seed = context.seeds.seed_for("figure3:random")
        random_curve = gamma_sweep(
            lambda constraints: RandomAdditionAttack(
                target.network, constraints=constraints, random_state=random_seed),
            malware.features, models, theta=0.1, gamma_values=gamma_grid)

        _curves_identical(result.gamma_curve, gamma_curve)
        _curves_identical(result.theta_curve, theta_curve)
        _curves_identical(result.random_gamma_curve, random_curve)
        assert result.baseline_detection_rate == \
            target.detection_rate(malware.features)

    def test_rendering_is_byte_identical(self, parity_context):
        first = figure3_whitebox.run(parity_context).render()
        second = figure3_whitebox.run(parity_context).render()
        assert first == second


class TestFigure4Parity:
    def test_scenario_run_matches_seed_driver(self, parity_context):
        context = parity_context
        result = figure4_greybox.run(context)

        # Seed-equivalent computation (pre-refactor figure4_greybox.run,
        # count-substitute panels).
        target = context.target_model
        substitute = context.substitute_model
        malware = context.attack_malware
        gamma_grid = paper_gamma_grid(context.scale.sweep_points_gamma)
        theta_grid = paper_theta_grid(context.scale.sweep_points_theta)

        def substitute_attack(constraints):
            return JsmaAttack(substitute.network, constraints=constraints,
                              early_stop=False)

        models = {"substitute": substitute.network, "target": target.network}
        gamma_curve = gamma_sweep(substitute_attack, malware.features, models,
                                  theta=0.1, gamma_values=gamma_grid)
        theta_curve = theta_sweep(substitute_attack, malware.features, models,
                                  gamma=0.005, theta_values=theta_grid)
        operating_constraints = PerturbationConstraints(
            theta=paper_values.GREY_BOX_COUNTS["theta"],
            gamma=paper_values.GREY_BOX_COUNTS["gamma"])
        operating = TransferAttack(substitute_attack(operating_constraints),
                                   target.network).run(malware.features)

        _curves_identical(result.gamma_curve, gamma_curve)
        _curves_identical(result.theta_curve, theta_curve)
        assert result.operating_point.substitute_detection_rate == \
            operating.substitute_detection_rate
        assert result.operating_point.target_detection_rate == \
            operating.target_detection_rate
        assert result.operating_point.target_detection_rate_original == \
            operating.target_detection_rate_original
        assert np.array_equal(result.operating_point.attack_result.adversarial,
                              operating.attack_result.adversarial)
        assert result.baseline_detection_rate == \
            target.detection_rate(malware.features)


class TestTable6Parity:
    def test_scenario_run_matches_seed_driver(self, parity_context):
        context = parity_context
        result = table6_defense.run(context)

        # Seed-equivalent computation (pre-refactor table6_defense.run).
        from repro.defenses.adversarial_training import AdversarialTrainingDefense
        from repro.defenses.base import ModelBackedDetector
        from repro.defenses.dim_reduction import DimensionalityReductionDefense
        from repro.defenses.distillation import DefensiveDistillation
        from repro.defenses.feature_squeezing import FeatureSqueezingDefense

        corpus = context.corpus
        target = context.target_model
        clean_test = corpus.test.clean_only()
        malware_test = corpus.test.malware_only()
        advex = context.greybox_adversarial(
            theta=paper_values.DEFENSE_PARAMS["adv_training_theta"],
            gamma=paper_values.DEFENSE_PARAMS["adv_training_gamma"])
        temperature = paper_values.DEFENSE_PARAMS["distillation_temperature"]
        n_components = min(paper_values.DEFENSE_PARAMS["pca_components"],
                           corpus.train.n_features)

        def evaluate(detector):
            return {
                "clean_test": {"tpr": float("nan"),
                               "tnr": detector.report(clean_test).tnr},
                "malware_test": {"tpr": detector.report(malware_test).tpr,
                                 "tnr": float("nan")},
                "advex_test": {"tpr": detector.detection_rate(advex.features),
                               "tnr": float("nan")},
            }

        expected = {}
        expected["no_defense"] = evaluate(
            ModelBackedDetector(target, name="no_defense"))
        adv_training = AdversarialTrainingDefense(
            scale=context.scale,
            random_state=context.seeds.seed_for("table6:advtraining"))
        expected["adversarial_training"] = evaluate(
            adv_training.fit(corpus.train, corpus.test, advex,
                             validation=corpus.validation))
        distillation = DefensiveDistillation(
            temperature=temperature, scale=context.scale,
            random_state=context.seeds.seed_for("table6:distillation"))
        expected["distillation"] = evaluate(
            distillation.fit(corpus.train, corpus.validation))
        expected["feature_squeezing"] = evaluate(
            FeatureSqueezingDefense().fit(target.network, corpus.validation))
        dim_reduction = DimensionalityReductionDefense(
            n_components=n_components, scale=context.scale,
            random_state=context.seeds.seed_for("table6:dimreduct"))
        expected["dim_reduction"] = evaluate(
            dim_reduction.fit(corpus.train, corpus.validation))

        assert sorted(result.results) == sorted(expected)
        for defense, per_dataset in expected.items():
            for dataset, rates in per_dataset.items():
                for metric, value in rates.items():
                    measured = result.results[defense][dataset][metric]
                    if np.isnan(value):
                        assert np.isnan(measured)
                    else:
                        assert measured == value, (defense, dataset, metric)

    def test_rendering_is_byte_identical_across_runs(self, parity_context):
        assert table6_defense.run(parity_context).render() == \
            table6_defense.run(parity_context).render()
