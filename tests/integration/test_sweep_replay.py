"""Replay-parity: the trajectory-replay sweep engine vs the per-point path.

The contract (ISSUE 5): under float64 a γ security curve produced by one
instrumented full-budget run + trajectory slicing is **byte-identical**
(``SecurityCurve.as_rows`` and the rendered figure text) to the seed
behaviour of re-running the attack at every operating point — including
``features_per_step > 1``, ``early_stop=False`` (the transfer setting) and
the binary grey-box variant.  Under float32 the two paths agree within 1%.
"""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack
from repro.config import TINY_PROFILE
from repro.evaluation.reports import render_security_curve
from repro.evaluation.robustness import minimal_evasion_budget
from repro.evaluation.security_curve import gamma_sweep, paper_gamma_grid, theta_sweep
from repro.evaluation.sweep import (
    gamma_sweep_from_trajectory,
    replay_gamma_sweep,
    supports_replay,
)
from repro.exceptions import AttackError
from repro.experiments.context import ExperimentContext
from repro.nn.engine import use_dtype
from repro.scenarios import ScenarioSpec, run_scenario

GRID = (0.0, 0.005, 0.015, 0.03)


def _assert_curves_byte_identical(replayed, per_point):
    assert replayed.as_rows() == per_point.as_rows()
    assert render_security_curve(replayed) == render_security_curve(per_point)
    for got, want in zip(replayed.points, per_point.points):
        assert got.evaded_counts == want.evaded_counts
        assert got.n_perturbed_features == want.n_perturbed_features


class TestGammaReplayParity:
    def test_whitebox_early_stop(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        models = {"target": network}

        def factory(constraints):
            return JsmaAttack(network, constraints=constraints)

        replayed = gamma_sweep(factory, tiny_malware.features, models,
                               theta=0.1, gamma_values=GRID, strategy="replay")
        per_point = gamma_sweep(factory, tiny_malware.features, models,
                                theta=0.1, gamma_values=GRID,
                                strategy="per_point")
        _assert_curves_byte_identical(replayed, per_point)

    def test_greybox_full_budget_two_models(self, tiny_context, tiny_malware):
        """early_stop=False (the transfer setting), scored on both models."""
        substitute = tiny_context.substitute_model.network
        models = {"substitute": substitute,
                  "target": tiny_context.target_model.network}

        def factory(constraints):
            return JsmaAttack(substitute, constraints=constraints,
                              early_stop=False)

        replayed = gamma_sweep(factory, tiny_malware.features, models,
                               theta=0.1, gamma_values=GRID, strategy="replay")
        per_point = gamma_sweep(factory, tiny_malware.features, models,
                                theta=0.1, gamma_values=GRID,
                                strategy="per_point")
        _assert_curves_byte_identical(replayed, per_point)

    def test_features_per_step_greater_than_one(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        models = {"target": network}

        def factory(constraints):
            return JsmaAttack(network, constraints=constraints,
                              features_per_step=3)

        replayed = gamma_sweep(factory, tiny_malware.features, models,
                               theta=0.1, gamma_values=GRID, strategy="replay")
        per_point = gamma_sweep(factory, tiny_malware.features, models,
                                theta=0.1, gamma_values=GRID,
                                strategy="per_point")
        _assert_curves_byte_identical(replayed, per_point)

    def test_binary_greybox_variant(self, tiny_context, tiny_malware):
        """The Figure 4(c) configuration: binary features, θ overridden to 1."""
        binary = tiny_context.binary_substitute.network
        malware_binary = (tiny_malware.features > 0).astype(np.float64)
        models = {"substitute": binary}

        def factory(constraints):
            return JsmaAttack(binary,
                              constraints=constraints.with_strength(theta=1.0),
                              early_stop=False)

        replayed = gamma_sweep(factory, malware_binary, models,
                               theta=0.1, gamma_values=GRID, strategy="replay")
        per_point = gamma_sweep(factory, malware_binary, models,
                                theta=0.1, gamma_values=GRID,
                                strategy="per_point")
        _assert_curves_byte_identical(replayed, per_point)

    def test_unsorted_grid_and_gamma_zero(self, tiny_context, tiny_malware):
        """The instrumented run is pinned to the *largest* γ, not the last."""
        network = tiny_context.target_model.network
        models = {"target": network}

        def factory(constraints):
            return JsmaAttack(network, constraints=constraints)

        grid = (0.02, 0.0, 0.03, 0.005)
        replayed = gamma_sweep(factory, tiny_malware.features, models,
                               theta=0.1, gamma_values=grid, strategy="replay")
        per_point = gamma_sweep(factory, tiny_malware.features, models,
                                theta=0.1, gamma_values=grid,
                                strategy="per_point")
        _assert_curves_byte_identical(replayed, per_point)

    def test_random_addition_falls_back_to_per_point(self, tiny_context,
                                                     tiny_malware):
        network = tiny_context.target_model.network
        models = {"target": network}

        def factory(constraints):
            return RandomAdditionAttack(network, constraints=constraints,
                                        random_state=7)

        assert not supports_replay(factory(PerturbationConstraints()))
        default = gamma_sweep(factory, tiny_malware.features, models,
                              theta=0.1, gamma_values=GRID)
        per_point = gamma_sweep(factory, tiny_malware.features, models,
                                theta=0.1, gamma_values=GRID,
                                strategy="per_point")
        _assert_curves_byte_identical(default, per_point)

    def test_explicit_replay_of_trajectoryless_attack_raises(self, tiny_context,
                                                             tiny_malware):
        network = tiny_context.target_model.network

        def factory(constraints):
            return RandomAdditionAttack(network, constraints=constraints,
                                        random_state=7)

        with pytest.raises(AttackError):
            gamma_sweep_from_trajectory(factory, tiny_malware.features,
                                        {"target": network}, theta=0.1,
                                        gamma_values=GRID)

    def test_unknown_strategy_rejected(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        with pytest.raises(AttackError):
            gamma_sweep(lambda c: JsmaAttack(network, constraints=c),
                        tiny_malware.features, {"target": network},
                        theta=0.1, gamma_values=GRID, strategy="fused")

    def test_float32_agreement_within_one_percent(self, tiny_scale, tiny_corpus):
        """float32 engines: replay and per-point rates agree within 1%."""
        with use_dtype("float32"):
            from repro.models.factory import train_target_model

            model32 = train_target_model(tiny_corpus, scale=tiny_scale,
                                         random_state=5)
        network = model32.network
        malware = tiny_corpus.test.malware_only().features[:30]
        models = {"target": network}

        def factory(constraints):
            return JsmaAttack(network, constraints=constraints)

        replayed = gamma_sweep(factory, malware, models, theta=0.1,
                               gamma_values=GRID, strategy="replay")
        per_point = gamma_sweep(factory, malware, models, theta=0.1,
                                gamma_values=GRID, strategy="per_point")
        for got, want in zip(replayed.detection_rates("target"),
                             per_point.detection_rates("target")):
            assert got == pytest.approx(want, abs=0.01)


class TestReplaySweepViews:
    def test_result_at_matches_fresh_run(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network

        def factory(constraints):
            return JsmaAttack(network, constraints=constraints,
                              early_stop=False)

        sweep = replay_gamma_sweep(factory, tiny_malware.features,
                                   {"target": network}, theta=0.1,
                                   gamma_values=GRID)
        for gamma in (0.005, 0.015, 0.03):
            direct = factory(PerturbationConstraints(theta=0.1, gamma=gamma)
                             ).run(tiny_malware.features)
            view = sweep.result_at(gamma)
            np.testing.assert_array_equal(view.adversarial, direct.adversarial)
            np.testing.assert_array_equal(view.adversarial_predictions,
                                          direct.adversarial_predictions)
            np.testing.assert_array_equal(view.perturbed_features,
                                          direct.perturbed_features)
            np.testing.assert_array_equal(view.iterations, direct.iterations)
            assert view.constraints.gamma == pytest.approx(gamma)

    def test_result_beyond_recorded_budget_raises(self, tiny_context,
                                                  tiny_malware):
        network = tiny_context.target_model.network
        sweep = replay_gamma_sweep(
            lambda c: JsmaAttack(network, constraints=c),
            tiny_malware.features, {"target": network}, theta=0.1,
            gamma_values=(0.0, 0.01))
        with pytest.raises(AttackError):
            sweep.result_at(0.5)


class TestScenarioSweepStrategy:
    def test_report_payloads_identical_across_strategies(self, tiny_context):
        base = ScenarioSpec(attack="jsma", model="target", sweep="gamma",
                            theta=0.1, sweep_values=GRID, scale="tiny",
                            seed=123)
        replayed = run_scenario(base, context=tiny_context)
        per_point = run_scenario(base.with_overrides(sweep_strategy="per_point"),
                                 context=tiny_context)
        a = replayed.to_dict(include_timing=False)
        b = per_point.to_dict(include_timing=False)
        a.pop("spec")
        b.pop("spec")
        assert a == b

    def test_shared_robustness_view_matches_direct_run(self, tiny_context):
        """sweep + robustness_budget: one instrumented run serves both."""
        spec = ScenarioSpec(attack="jsma", model="target", sweep="gamma",
                            theta=0.1, sweep_values=GRID,
                            robustness_budget=9, scale="tiny", seed=123)
        report = run_scenario(spec, context=tiny_context)
        direct = minimal_evasion_budget(
            tiny_context.target_model.network,
            tiny_context.attack_malware.features, theta=0.1, max_features=9)
        np.testing.assert_array_equal(report.robustness.minimal_features,
                                      direct.minimal_features)
        assert report.robustness.max_features == direct.max_features

    def test_greybox_sweep_robustness_falls_back(self, tiny_context):
        """early_stop=False trajectories cannot serve the robustness view."""
        spec = ScenarioSpec(attack="jsma", model="substitute", sweep="gamma",
                            attack_params={"early_stop": False}, theta=0.1,
                            sweep_values=GRID, robustness_budget=5,
                            scale="tiny", seed=123)
        report = run_scenario(spec, context=tiny_context)
        direct = minimal_evasion_budget(
            tiny_context.substitute_model.network,
            tiny_context.attack_malware.features, theta=0.1, max_features=5)
        np.testing.assert_array_equal(report.robustness.minimal_features,
                                      direct.minimal_features)


class TestThetaSweepFusion:
    def test_theta_sweep_unchanged_semantics(self, tiny_context, tiny_malware):
        """Fused scoring: the θ-sweep still matches a hand-rolled loop."""
        network = tiny_context.target_model.network
        thetas = (0.0, 0.05, 0.1)
        curve = theta_sweep(
            lambda c: JsmaAttack(network, constraints=c),
            tiny_malware.features, {"target": network},
            gamma=0.02, theta_values=thetas)
        from repro.nn.metrics import detection_rate

        for point, theta in zip(curve.points, thetas):
            constraints = PerturbationConstraints(theta=theta, gamma=0.02)
            result = JsmaAttack(network, constraints=constraints).run(
                tiny_malware.features)
            assert point.detection_rates["target"] == pytest.approx(
                detection_rate(network.predict(result.adversarial)))
            assert point.evaded_counts["target"] == int(
                np.count_nonzero(network.predict(result.adversarial) == 0))
            assert point.mean_l2_distance == result.mean_l2_distance
