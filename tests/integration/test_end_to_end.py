"""End-to-end integration tests: raw source samples → logs → features →
models → attacks → defenses, on the tiny scale profile."""

import numpy as np
import pytest

from repro.apilog.sandbox import Sandbox
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack
from repro.attacks.transfer import TransferAttack
from repro.config import CLASS_MALWARE
from repro.defenses.adversarial_training import AdversarialTrainingDefense
from repro.defenses.dim_reduction import DimensionalityReductionDefense
from repro.data.dataset import Dataset


class TestFullPipelineFromSource:
    def test_source_to_prediction_path(self, tiny_context):
        """A source sample can be detonated, featurised and scored end to end."""
        sample = tiny_context.generator.generate_source_samples(
            1, label=CLASS_MALWARE, source="train", rng_name="integration:source")[0]
        sandbox = Sandbox(os_version="win10", random_state=0, record_args=True)
        log = sandbox.execute(sample).log
        features = tiny_context.pipeline.transform([log])
        assert features.shape == (1, 491)
        prediction = tiny_context.target_model.predict(features)
        assert prediction[0] in (0, 1)

    def test_log_text_round_trip_preserves_features(self, tiny_context):
        from repro.apilog.log_format import ApiLog

        sample = tiny_context.generator.generate_source_samples(
            1, label=CLASS_MALWARE, source="train", rng_name="integration:roundtrip")[0]
        log = Sandbox(os_version="win7", random_state=1, record_args=True).execute(sample).log
        direct = tiny_context.pipeline.transform([log])
        reparsed = ApiLog.from_text(log.to_text())
        via_text = tiny_context.pipeline.transform([reparsed])
        np.testing.assert_allclose(direct, via_text)


class TestWhiteBoxEndToEnd:
    def test_whitebox_attack_story(self, tiny_context):
        """The Figure 3 story: JSMA collapses detection, random noise does not."""
        target = tiny_context.target_model
        malware = tiny_context.attack_malware
        baseline = target.detection_rate(malware.features)
        constraints = PerturbationConstraints(theta=0.1, gamma=0.03)
        jsma_rate = JsmaAttack(target.network, constraints).run(
            malware.features).detection_rate
        random_rate = RandomAdditionAttack(target.network, constraints,
                                           random_state=0).run(
            malware.features).detection_rate
        assert jsma_rate < baseline - 0.3
        assert random_rate > baseline - 0.15
        assert jsma_rate < random_rate


class TestGreyBoxEndToEnd:
    def test_transferability_story(self, tiny_context):
        """The Figure 4 story: substitute-crafted examples transfer to the target."""
        target = tiny_context.target_model
        substitute = tiny_context.substitute_model
        malware = tiny_context.attack_malware
        attack = JsmaAttack(substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.03),
                            early_stop=False)
        outcome = TransferAttack(attack, target.network).run(malware.features)
        assert outcome.substitute_detection_rate < outcome.target_detection_rate_original
        assert outcome.target_detection_rate < outcome.target_detection_rate_original
        assert 0.0 < outcome.transfer_rate <= 1.0


class TestDefenseEndToEnd:
    def test_adversarial_training_beats_no_defense(self, tiny_context):
        """The Table VI story for the adversarial-training row."""
        advex = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        target = tiny_context.target_model
        defense = AdversarialTrainingDefense(scale=tiny_context.scale, random_state=1)
        detector = defense.fit(tiny_context.corpus.train, tiny_context.corpus.test, advex)
        assert (detector.detection_rate(advex.features)
                > target.detection_rate(advex.features))
        clean = tiny_context.corpus.test.clean_only()
        assert detector.report(clean).tnr > 0.8

    def test_dim_reduction_improves_adversarial_detection(self, tiny_context):
        advex = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        defense = DimensionalityReductionDefense(n_components=10,
                                                 scale=tiny_context.scale,
                                                 random_state=1)
        detector = defense.fit(tiny_context.corpus.train)
        assert (detector.detection_rate(advex.features)
                >= tiny_context.target_model.detection_rate(advex.features))

    def test_defended_and_undefended_models_share_interface(self, tiny_context):
        advex = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        dataset = Dataset(features=advex.features,
                          labels=np.full(advex.n_samples, CLASS_MALWARE, dtype=np.int64))
        defense = DimensionalityReductionDefense(n_components=8,
                                                 scale=tiny_context.scale,
                                                 random_state=0)
        detector = defense.fit(tiny_context.corpus.train)
        report = detector.report(dataset)
        assert 0.0 <= report.tpr <= 1.0


class TestPersistenceAcrossComponents:
    def test_saved_artifacts_reproduce_predictions(self, tmp_path, tiny_context):
        """Pipeline + model persisted to disk give identical verdicts after reload."""
        from repro.features.pipeline import FeaturePipeline
        from repro.models.base import DetectorModel

        target = tiny_context.target_model
        pipeline = tiny_context.pipeline
        features = tiny_context.corpus.test.features[:20]

        pipeline.save(tmp_path / "pipeline")
        target.save(tmp_path / "target")

        restored_pipeline = FeaturePipeline.load(tmp_path / "pipeline")
        restored_target = DetectorModel.load(tmp_path / "target")

        sample_counts = {"writefile": 4, "winexec": 1, "waitmessage": 2}
        np.testing.assert_allclose(restored_pipeline.transform([sample_counts]),
                                   pipeline.transform([sample_counts]))
        np.testing.assert_array_equal(restored_target.predict(features),
                                      target.predict(features))
