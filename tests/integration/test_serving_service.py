"""Integration tests: the scoring service end to end over a tiny context.

The load-bearing property is verdict correctness: for any log, the service's
decision must be *identical* to the direct
``FeaturePipeline.transform → TargetModel.predict`` path the experiments
use.  On top of that the tests cover the micro-batched online path, the
defended endpoints, degenerate logs (empty / fully unmonitored) and the
mixed-traffic replay loop.
"""

import numpy as np
import pytest

from repro.apilog.log_format import ApiLog, LogRecord
from repro.config import CLASS_CLEAN, TINY_PROFILE
from repro.defenses.base import ModelBackedDetector
from repro.defenses.ensemble import EnsembleDefense
from repro.defenses.feature_squeezing import FeatureSqueezingDefense
from repro.experiments.context import ExperimentContext
from repro.serving import (
    LoadGenerator,
    ModelRegistry,
    ScoringService,
    TrafficMix,
    replay,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(scale=TINY_PROFILE, seed=31)


@pytest.fixture(scope="module")
def servable(context):
    return ModelRegistry().get("target", context=context)


@pytest.fixture(scope="module")
def log_requests(context):
    """A deterministic batch of clean+malware API logs (full log path)."""
    generator = LoadGenerator(context, mix=TrafficMix(0.5, 0.5, 0.0), seed=9)
    return generator.generate(20)


class TestVerdictCorrectness:
    def test_verdict_matches_direct_pipeline_predict_path(self, servable, log_requests):
        service = ScoringService(servable)
        logs = [request.payload for request in log_requests]
        direct_features = servable.pipeline.transform(logs)
        direct_labels = servable.model.predict(direct_features)
        direct_scores = servable.model.malware_confidence(direct_features)

        verdicts = service.score_many(log_requests)
        assert [v.label for v in verdicts] == list(direct_labels)
        np.testing.assert_allclose([v.malware_probability for v in verdicts],
                                   direct_scores, atol=1e-12)

    def test_single_score_matches_batched_score(self, servable, log_requests):
        service = ScoringService(servable)
        singles = [service.score(request) for request in log_requests]
        batched = service.score_many(log_requests)
        assert [v.label for v in singles] == [v.label for v in batched]
        # Batch-of-1 and batch-of-20 matmuls reduce in different orders, so
        # low-order bits differ under the float32 engine.
        atol = 1e-12 if servable.dtype == "float64" else 1e-5
        np.testing.assert_allclose([v.malware_probability for v in singles],
                                   [v.malware_probability for v in batched],
                                   atol=atol)

    def test_verdict_metadata(self, servable, log_requests):
        verdict = ScoringService(servable).score(log_requests[0])
        assert verdict.request_id == log_requests[0].request_id
        assert verdict.model_name == "target"
        assert verdict.model_version == servable.version
        assert verdict.defense is None
        assert verdict.verdict in ("clean", "malware")
        assert verdict.latency_ms >= 0.0
        payload = verdict.as_dict()
        assert payload["label"] in (0, 1)
        assert payload["model_version"] == servable.version

    def test_feature_payloads_score_identically_to_logs(self, servable, log_requests):
        service = ScoringService(servable)
        logs = [request.payload for request in log_requests[:6]]
        rows = servable.pipeline.transform(logs)
        from_logs = service.score_many(logs)
        from_rows = service.score_many([rows[i] for i in range(rows.shape[0])])
        assert [v.label for v in from_logs] == [v.label for v in from_rows]


class TestDegenerateLogs:
    def test_empty_log_scores_without_raising(self, servable):
        verdict = ScoringService(servable).score(
            ApiLog(sample_id="empty", os_version="win7"))
        assert verdict.verdict in ("clean", "malware")

    def test_unknown_api_log_scores_as_zero_vector(self, servable):
        unknown = ApiLog(sample_id="unknown-apis", os_version="win7", records=[
            LogRecord(api="TotallyUnmonitoredApi", address=0x1000),
            LogRecord(api="AnotherUnknownCall", address=0x2000),
        ])
        service = ScoringService(servable)
        verdict = service.score(unknown)
        zero = np.zeros(servable.n_features)
        expected = servable.model.malware_confidence(zero.reshape(1, -1))[0]
        assert verdict.malware_probability == pytest.approx(expected, abs=1e-12)

    def test_empty_batch_returns_no_verdicts(self, servable):
        assert ScoringService(servable).score_many([]) == []

    def test_wrong_width_feature_payload_raises(self, servable):
        from repro.exceptions import ServingError
        with pytest.raises(ServingError):
            ScoringService(servable).score(np.zeros(servable.n_features + 1))

    def test_malformed_payload_rejected_at_submit_not_at_flush(self, servable):
        from repro.exceptions import ServingError

        service = ScoringService(servable, max_batch_size=8)
        service.submit(np.zeros(servable.n_features))
        bad = np.zeros(servable.n_features)
        bad[0] = np.nan
        with pytest.raises(ServingError):
            service.submit(bad)                    # rejected at the door
        with pytest.raises(ServingError):
            service.submit({"writefile": -3})      # negative counts likewise
        assert service.pending == 1                # queued request unharmed
        assert len(service.drain()) == 1

    def test_row_shaped_feature_payload_normalised_at_the_door(self, servable):
        # A (1, n) matrix-shaped single request must be stored as the
        # validated (n,) vector, not fail later at flush time.
        service = ScoringService(servable, max_batch_size=4)
        row = np.zeros((1, servable.n_features))
        service.submit(row)
        verdicts = service.drain()
        assert len(verdicts) == 1
        assert verdicts[0].verdict in ("clean", "malware")

    def test_clear_pending_recovers_from_poisoned_prewrapped_batch(self, servable):
        from repro.exceptions import ServingError
        from repro.serving import ScoringRequest

        service = ScoringService(servable, max_batch_size=3)
        good = ScoringRequest(request_id="good", payload=np.zeros(servable.n_features))
        bad = ScoringRequest(request_id="bad",
                             payload=np.full(servable.n_features, np.nan))
        service.submit(good)
        service.submit(bad)                        # trusted fast path: enqueued
        with pytest.raises(ServingError):
            service.drain()                        # flush fails on the offender
        assert service.pending == 2                # batch restored, not dropped
        recovered = service.clear_pending()
        assert [request.request_id for request in recovered] == ["good", "bad"]
        assert service.pending == 0
        service.submit(recovered[0])               # healthy request resubmitted
        assert len(service.drain()) == 1

    def test_invalid_replay_rate_rejected(self, servable, log_requests):
        from repro.exceptions import ServingError

        service = ScoringService(servable)
        with pytest.raises(ServingError):
            replay(service, log_requests, rate_per_s=0.0)
        with pytest.raises(ServingError):
            replay(service, log_requests, rate_per_s=-3.0)
        assert service.pending == 0                # nothing was enqueued

    def test_paced_replay_honours_flush_deadline(self, servable, context):
        # At 10 req/s (~100 ms gaps) with a 5 ms latency SLO, the pacing
        # loop must wake at the batcher deadline rather than sleeping the
        # whole inter-arrival gap with requests stuck in the queue.
        generator = LoadGenerator(context, mix=TrafficMix(1.0, 0.0, 0.0), seed=17)
        requests = generator.generate(5)
        service = ScoringService(servable, max_batch_size=64, max_delay_ms=5.0)
        verdicts = replay(service, requests, rate_per_s=10.0, seed=17)
        assert len(verdicts) == len(requests)
        report = service.report(elapsed_s=1.0)
        assert report.max_ms < 60.0                # ~100 ms without the fix

    def test_replay_rate_matches_generator_arrival_times(self, servable, context):
        from repro.serving.loadgen import _poisson_offsets

        generator = LoadGenerator(context, seed=23)
        np.testing.assert_array_equal(generator.arrival_times(7, 500.0),
                                      _poisson_offsets(7, 500.0, seed=23))


class TestMicroBatchedPath:
    def test_submit_drain_equals_score_many(self, servable, log_requests):
        service = ScoringService(servable, max_batch_size=8)
        collected = []
        for request in log_requests:
            collected.extend(service.submit(request))
        collected.extend(service.drain())
        assert len(collected) == len(log_requests)
        assert service.n_batches >= 2          # 20 requests, batch size 8
        reference = ScoringService(servable).score_many(log_requests)
        by_id = {v.request_id: v for v in collected}
        for expected in reference:
            assert by_id[expected.request_id].label == expected.label

    def test_replay_returns_one_verdict_per_request(self, servable, context):
        generator = LoadGenerator(context, mix=TrafficMix(0.4, 0.4, 0.2), seed=13)
        requests = generator.generate(15)
        service = ScoringService(servable, max_batch_size=4)
        verdicts = replay(service, requests)
        assert sorted(v.request_id for v in verdicts) == \
               sorted(r.request_id for r in requests)
        kinds = {v.request_id.split("-")[0] for v in verdicts}
        assert "adv" in kinds                  # adversarial traffic was served

    def test_latency_tracker_accumulates(self, servable, log_requests):
        service = ScoringService(servable)
        service.score_many(log_requests)
        report = service.report(elapsed_s=1.0)
        assert report.n_requests == len(log_requests)
        assert report.p95_ms >= report.p50_ms >= 0.0
        service.reset_stats()
        assert service.tracker.count == 0


class TestDefendedEndpoints:
    @pytest.fixture(scope="class")
    def squeezed(self, servable, context):
        return FeatureSqueezingDefense().fit(servable.model.network,
                                             context.corpus.validation)

    def test_squeezing_endpoint_matches_detector(self, servable, context,
                                                 squeezed, log_requests):
        service = ScoringService(servable, detector=squeezed)
        logs = [request.payload for request in log_requests]
        features = servable.pipeline.transform(logs)
        expected = squeezed.predict(features)
        verdicts = service.score_many(logs)
        assert [v.label for v in verdicts] == list(expected)
        assert all(v.defense == "feature_squeezing" for v in verdicts)

    def test_defended_and_undefended_endpoints_coexist(self, servable, context,
                                                       squeezed):
        bare = ScoringService(servable)
        defended = ScoringService(servable, detector=squeezed)
        adversarial = context.greybox_adversarial(theta=0.1, gamma=0.02)
        row = adversarial.features[0]
        bare_verdict = bare.score(row)
        defended_verdict = defended.score(row)
        assert bare_verdict.model_version == defended_verdict.model_version
        assert bare_verdict.defense is None
        assert defended_verdict.defense == "feature_squeezing"

    def test_ensemble_endpoint(self, servable, context, squeezed, log_requests):
        members = [ModelBackedDetector(servable.model, name="base"), squeezed]
        ensemble = EnsembleDefense(voting="average").fit(members)
        service = ScoringService(servable, detector=ensemble)
        logs = [request.payload for request in log_requests[:8]]
        features = servable.pipeline.transform(logs)
        expected = ensemble.predict(features)
        verdicts = service.score_many(logs)
        assert [v.label for v in verdicts] == list(expected)
