"""Tracing under chaos: span trees must survive crashes and flush errors.

The dependability contract for distributed tracing mirrors the one for
verdicts: a replica crash mid-stream loses no spans for requests that were
ultimately scored (the redispatched copies re-record their hops on the
replacement replica, and the dead replica's partial hops arrive in its
dying-gasp snapshot), and an injected flush error shows up as an
error-tagged ``service.flush`` span rather than a hole in the stream.
"""

import pytest

from repro.obs import (
    Instrumentation,
    ListSink,
    SpanCollector,
    breakdown_summary,
)
from repro.parallel import WorkerFleet
from repro.reliability import FaultPlan, FaultSpec, RetryPolicy
from repro.serving import ModelRegistry, ScoringService


@pytest.fixture(scope="module")
def malware_rows(tiny_context):
    return tiny_context.attack_malware.features[:32]


@pytest.fixture(scope="module")
def baseline_verdicts(tiny_context, malware_rows):
    servable = ModelRegistry().get("target", context=tiny_context)
    return ScoringService(servable).score_many(list(malware_rows))


def _chaotic_fleet(tiny_context, obs):
    plan = FaultPlan(specs=(
        FaultSpec(site="fleet.dispatch", action="crash", at=3,
                  where={"worker": 1}),
        FaultSpec(site="service.flush", action="error", at=1,
                  where={"worker": 0}),
    ))
    return WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=8,
                       restart_budget=2, fault_plan=plan,
                       retry_policy=RetryPolicy(max_retries=2,
                                                base_delay_s=0.01, seed=7),
                       instrumentation=obs)


class TestTraceUnderChaos:
    @pytest.fixture(scope="class")
    def chaotic_run(self, tiny_context, malware_rows):
        obs = Instrumentation(sink=ListSink(max_events=32768))
        fleet = _chaotic_fleet(tiny_context, obs)
        verdicts, report = fleet.score_stream(list(malware_rows))
        return verdicts, report

    def test_faults_actually_fired(self, chaotic_run):
        _, report = chaotic_run
        reliability = report.reliability
        assert reliability.restarts == 1
        assert reliability.redispatches >= 1
        assert reliability.flush_retries == 1
        assert reliability.faults == {"fleet.dispatch": 1, "service.flush": 1}

    def test_every_verdict_has_a_complete_tree(self, chaotic_run,
                                               baseline_verdicts):
        verdicts, report = chaotic_run
        assert len(verdicts) == len(baseline_verdicts)
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        # One rooted tree per request — the crash and the flush error lost
        # nothing and duplicated nothing.
        assert sorted(trees) == sorted(v.request_id for v in verdicts)
        assert collector.n_orphans == 0
        assert collector.n_duplicates == 0
        for tree in trees.values():
            assert tree.complete
            assert tree.root.name == "request"
            assert tree.root.tags.get("status") == "ok"

    def test_redispatched_requests_carry_doubled_queue_hops(self,
                                                            chaotic_run):
        verdicts, report = chaotic_run
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        doubled = [tree for tree in trees.values()
                   if tree.hop_counts().get("queue_ms", 0) > 1]
        # Worker 1 died after picking requests up: its dying-gasp snapshot
        # kept the first fleet.queue hop, and the redispatch recorded a
        # second on the replacement — both in one complete, rooted tree.
        assert report.reliability.redispatches >= 1
        assert doubled
        assert all(tree.complete for tree in doubled)
        # Doubled-hop trees are excluded from breakdown means; clean
        # once-scored trees must still dominate the summary.
        summary = breakdown_summary(trees)
        assert 0 < summary["queue_ms"]["count"] <= len(trees) - len(doubled)

    def test_injected_flush_error_is_span_tagged(self, chaotic_run):
        _, report = chaotic_run
        flush_spans = [event for event in report.obs["events"]
                       if event.get("kind") == "span"
                       and event.get("name") == "service.flush"]
        errored = [event for event in flush_spans
                   if (event.get("tags") or {}).get("error")]
        assert len(errored) == 1  # exactly the injected failure
        assert flush_spans  # the retry's successful flush is there too

    def test_chaotic_verdicts_match_fault_free_baseline(self, chaotic_run,
                                                        baseline_verdicts):
        verdicts, _ = chaotic_run
        for ours, theirs in zip(verdicts, baseline_verdicts):
            assert ours.status == "ok"
            assert ours.malware_probability == theirs.malware_probability
            assert ours.label == theirs.label


class TestSampledTracing:
    """``trace_sample_every`` trades coverage for overhead, never fidelity:
    whatever is traced must still be a complete rooted tree."""

    def test_sampled_fleet_traces_exactly_the_sampled_subset(
            self, tiny_context, malware_rows, baseline_verdicts):
        obs = Instrumentation(sink=ListSink(max_events=32768))
        fleet = WorkerFleet(n_workers=2, context=tiny_context,
                            max_batch_size=8, instrumentation=obs,
                            trace_sample_every=4)
        verdicts, report = fleet.score_stream(list(malware_rows))
        assert len(verdicts) == len(malware_rows)
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        # Head-based 1-in-4 sampling: requests 1, 5, 9, ... get trees.
        expected = [verdict.request_id
                    for index, verdict in enumerate(verdicts)
                    if index % 4 == 0]
        assert sorted(trees) == sorted(expected)
        assert collector.n_orphans == 0
        assert collector.n_duplicates == 0
        assert all(tree.complete for tree in trees.values())
        # Sampling is observability-plane only: decisions are unmoved.
        for ours, theirs in zip(verdicts, baseline_verdicts):
            assert ours.malware_probability == theirs.malware_probability

    def test_invalid_sample_rate_rejected(self, tiny_context):
        from repro.exceptions import ParallelError

        with pytest.raises(ParallelError, match="trace_sample_every"):
            WorkerFleet(n_workers=2, context=tiny_context,
                        trace_sample_every=0)


class TestChaosSoakAcceptance:
    """The ISSUE's acceptance soak: 256 requests, 2 workers, crash + flush
    error, traced — trees exact, breakdowns consistent, verdicts unmoved."""

    N_SOAK = 256

    @pytest.fixture(scope="class")
    def soak_rows(self, tiny_context):
        rows = list(tiny_context.attack_malware.features)
        tiled = (rows * (self.N_SOAK // len(rows) + 1))[:self.N_SOAK]
        assert len(tiled) == self.N_SOAK
        return tiled

    @pytest.fixture(scope="class")
    def traced_soak(self, tiny_context, soak_rows):
        obs = Instrumentation(sink=ListSink(max_events=32768))
        fleet = _chaotic_fleet(tiny_context, obs)
        verdicts, report = fleet.score_stream(list(soak_rows))
        return verdicts, report

    @pytest.fixture(scope="class")
    def untraced_soak(self, tiny_context, soak_rows):
        fleet = _chaotic_fleet(tiny_context, obs=None)
        verdicts, _ = fleet.score_stream(list(soak_rows))
        return verdicts

    def test_every_request_yields_exactly_one_rooted_tree(self, traced_soak):
        verdicts, report = traced_soak
        assert len(verdicts) == self.N_SOAK
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        assert sorted(trees) == sorted(v.request_id for v in verdicts)
        assert collector.n_orphans == 0
        assert collector.n_duplicates == 0
        assert all(tree.complete for tree in trees.values())

    def test_breakdown_sums_to_end_to_end_latency(self, traced_soak):
        verdicts, report = traced_soak
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        by_id = {verdict.request_id: verdict for verdict in verdicts}
        checked = 0
        for trace_id, tree in trees.items():
            # Redispatched requests carry the dead replica's partial hops
            # on top of the replacement's — only exactly-once-hop trees
            # have a meaningful sum (same filter breakdown_summary uses).
            if any(count != 1 for count in tree.hop_counts().values()):
                continue
            parts = tree.breakdown()
            hops = sum(value for key, value in parts.items()
                       if key != "total_ms")
            latency = by_id[trace_id].latency_ms
            # The hop spans tile dispatcher-enqueue → verdict-built with
            # no gaps; the span clock stops a hair after the latency
            # clock, hence the small absolute slack under the 5% gate.
            assert hops == pytest.approx(latency, rel=0.05, abs=0.5)
            checked += 1
        assert checked >= self.N_SOAK * 0.9  # redispatches are the rare case

    def test_verdict_decisions_identical_to_untraced_run(self, traced_soak,
                                                         untraced_soak):
        traced_verdicts, _ = traced_soak

        def decisions(verdicts):
            return [{key: value for key, value in verdict.as_dict().items()
                     if key != "latency_ms"} for verdict in verdicts]

        assert decisions(traced_verdicts) == decisions(untraced_soak)

    def test_forced_burn_breach_alerts_and_sheds(self, tiny_context,
                                                 soak_rows):
        from repro.obs import SLOSpec

        obs = Instrumentation(sink=ListSink(max_events=32768))
        fleet = WorkerFleet(
            n_workers=2, context=tiny_context, max_batch_size=8,
            instrumentation=obs,
            slo_specs=(SLOSpec(name="latency", objective=0.99,
                               target_ms=0.0001, on_breach="shed"),))
        verdicts, report = fleet.score_stream(list(soak_rows))
        assert len(verdicts) == self.N_SOAK
        alerts = [event for event in report.obs["events"]
                  if event.get("kind") == "alert"]
        assert alerts  # the impossible target forced a burn-rate breach
        assert all(event["name"] == "slo.latency" for event in alerts)
        statuses = {verdict.status for verdict in verdicts}
        assert "shed" in statuses  # armed breach actually shed load
        # Non-shed requests still reconstruct to rooted trees.
        collector = SpanCollector()
        collector.add_snapshot(report.obs)
        trees = collector.trees()
        assert collector.n_orphans == 0
        for verdict in verdicts:
            if verdict.status == "ok":
                assert trees[verdict.request_id].complete
