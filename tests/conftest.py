"""Shared fixtures.

Expensive artifacts (the tiny corpus and the tiny trained models) are built
once per test session and shared; tests that need to mutate a model make
their own copy via ``network.clone()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TINY_PROFILE
from repro.data.generator import CorpusGenerator
from repro.experiments.context import ExperimentContext
from repro.models.factory import train_substitute_model, train_target_model
from repro.nn.network import NeuralNetwork


@pytest.fixture(scope="session")
def tiny_scale():
    """The tiny scale profile used throughout the test suite."""
    return TINY_PROFILE


@pytest.fixture(scope="session")
def tiny_context(tiny_scale):
    """A shared experiment context at tiny scale (lazy artifacts)."""
    return ExperimentContext(scale=tiny_scale, seed=123)


@pytest.fixture(scope="session")
def tiny_corpus(tiny_context):
    """The tiny Table I corpus bundle."""
    return tiny_context.corpus


@pytest.fixture(scope="session")
def tiny_target(tiny_context):
    """A trained tiny target model."""
    return tiny_context.target_model


@pytest.fixture(scope="session")
def tiny_substitute(tiny_context):
    """A trained tiny substitute model."""
    return tiny_context.substitute_model


@pytest.fixture(scope="session")
def tiny_malware(tiny_context):
    """Malware feature rows used as attack inputs."""
    return tiny_context.attack_malware


@pytest.fixture()
def small_mlp():
    """A small untrained MLP over 12 features (fast unit-test workhorse)."""
    return NeuralNetwork.mlp([12, 16, 8, 2], random_state=0, name="unit_mlp")


@pytest.fixture()
def toy_classification():
    """A tiny linearly-separable 12-feature binary problem."""
    rng = np.random.default_rng(42)
    n = 160
    half = n // 2
    clean = rng.normal(0.2, 0.08, size=(half, 12))
    malware = rng.normal(0.2, 0.08, size=(half, 12))
    malware[:, :4] += 0.45
    x = np.clip(np.vstack([clean, malware]), 0.0, 1.0)
    y = np.array([0] * half + [1] * half, dtype=np.int64)
    order = rng.permutation(n)
    return x[order], y[order]
