"""Property-based tests for metrics and PCA invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.defenses.pca import PCA
from repro.nn.metrics import accuracy, confusion_matrix, detection_rate, rates_from_confusion

label_arrays = npst.arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 1))


class TestMetricProperties:
    @given(y_true=label_arrays, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_confusion_matrix_total_equals_sample_count(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 2, size=y_true.shape[0])
        assert confusion_matrix(y_true, y_pred).sum() == y_true.shape[0]

    @given(y_true=label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_has_unit_accuracy(self, y_true):
        assert accuracy(y_true, y_true.copy()) == 1.0

    @given(y_true=label_arrays, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rates_are_in_unit_interval_or_nan(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 2, size=y_true.shape[0])
        rates = rates_from_confusion(confusion_matrix(y_true, y_pred))
        for value in rates.values():
            assert np.isnan(value) or 0.0 <= value <= 1.0

    @given(y_pred=label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_detection_rate_is_mean_of_positive_predictions(self, y_pred):
        assert detection_rate(y_pred) == np.mean(y_pred == 1)

    @given(y_true=label_arrays, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_is_weighted_average_of_class_rates(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.integers(0, 2, size=y_true.shape[0])
        assume(len(np.unique(y_true)) == 2)
        rates = rates_from_confusion(confusion_matrix(y_true, y_pred))
        n_pos = int(np.sum(y_true == 1))
        n_neg = int(np.sum(y_true == 0))
        weighted = (rates["tpr"] * n_pos + rates["tnr"] * n_neg) / (n_pos + n_neg)
        assert accuracy(y_true, y_pred) == pytest.approx(weighted, abs=1e-12)


class TestPcaProperties:
    @given(seed=st.integers(0, 2**31 - 1), n_samples=st.integers(12, 40),
           n_features=st.integers(3, 8), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_transform_shape_and_variance_ordering(self, seed, n_samples, n_features, k):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n_samples, n_features))
        pca = PCA(n_components=k).fit(data)
        projected = pca.transform(data)
        assert projected.shape == (n_samples, k)
        variance = pca.explained_variance_
        assert np.all(np.diff(variance) <= 1e-9)
        assert np.all(variance >= -1e-12)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_projection_reduces_or_preserves_reconstruction_quality_with_rank(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 6))
        error_small = PCA(n_components=2).fit(data).reconstruction_error(data).mean()
        error_large = PCA(n_components=5).fit(data).reconstruction_error(data).mean()
        assert error_large <= error_small + 1e-9

    @given(seed=st.integers(0, 2**31 - 1), shift=st.floats(-5.0, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_projection_is_translation_invariant(self, seed, shift):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(25, 5))
        pca = PCA(n_components=3).fit(data)
        shifted_pca = PCA(n_components=3).fit(data + shift)
        # The projected point clouds agree up to per-component sign flips.
        original = pca.transform(data)
        shifted = shifted_pca.transform(data + shift)
        for component in range(3):
            same = np.allclose(original[:, component], shifted[:, component], atol=1e-6)
            flipped = np.allclose(original[:, component], -shifted[:, component], atol=1e-6)
            assert same or flipped
