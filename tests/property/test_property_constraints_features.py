"""Property-based tests for the attack constraints and feature transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.attacks.constraints import PerturbationConstraints
from repro.features.transformation import BinaryTransformer, CountTransformer

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
count_floats = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


def feature_matrices(max_rows=5, n_features=12, elements=unit_floats):
    return npst.arrays(np.float64, st.tuples(st.integers(1, max_rows), st.just(n_features)),
                       elements=elements)


@st.composite
def matrix_pairs(draw, max_rows=5, n_features=12, elements=unit_floats):
    """Two matrices of identical shape (an original and a candidate)."""
    n_rows = draw(st.integers(1, max_rows))
    shape = (n_rows, n_features)
    first = draw(npst.arrays(np.float64, shape, elements=elements))
    second = draw(npst.arrays(np.float64, shape, elements=elements))
    return first, second


class TestConstraintProperties:
    @given(pair=matrix_pairs(), theta=st.floats(0.0, 1.0), gamma=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_projection_is_always_feasible_wrt_box_and_add_only(self, pair, theta, gamma):
        original, candidate = pair
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        projected = constraints.project(candidate, original)
        assert projected.min() >= constraints.clip_min - 1e-12
        assert projected.max() <= constraints.clip_max + 1e-12
        assert np.all(projected >= original - 1e-12)

    @given(original=feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_projection_is_identity_on_original(self, original):
        constraints = PerturbationConstraints()
        np.testing.assert_allclose(constraints.project(original, original), original)

    @given(pair=matrix_pairs())
    @settings(max_examples=60, deadline=None)
    def test_projection_is_idempotent(self, pair):
        original, candidate = pair
        constraints = PerturbationConstraints()
        once = constraints.project(candidate, original)
        twice = constraints.project(once, original)
        np.testing.assert_allclose(once, twice)

    @given(gamma=st.floats(0.0, 1.0), n_features=st.integers(1, 2000))
    @settings(max_examples=80, deadline=None)
    def test_budget_is_bounded_by_feature_count(self, gamma, n_features):
        constraints = PerturbationConstraints(gamma=gamma)
        budget = constraints.max_features(n_features)
        assert 0 <= budget <= n_features


class TestCountTransformerProperties:
    @given(train=feature_matrices(max_rows=6, elements=count_floats),
           test=feature_matrices(max_rows=6, elements=count_floats))
    @settings(max_examples=60, deadline=None)
    def test_output_always_in_unit_interval(self, train, test):
        transformer = CountTransformer().fit(train)
        out = transformer.transform(test)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    @given(train=feature_matrices(max_rows=6, elements=count_floats),
           counts=feature_matrices(max_rows=4, elements=count_floats),
           extra=st.floats(0.0, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_adding_calls_never_decreases_features(self, train, counts, extra):
        transformer = CountTransformer().fit(train)
        base = transformer.transform(counts)
        more = transformer.transform(counts + extra)
        assert np.all(more >= base - 1e-12)

    @given(train=feature_matrices(max_rows=6, elements=count_floats))
    @settings(max_examples=40, deadline=None)
    def test_zero_counts_always_map_to_zero(self, train):
        transformer = CountTransformer().fit(train)
        out = transformer.transform(np.zeros_like(train[:1]))
        np.testing.assert_array_equal(out, 0.0)

    @given(train=feature_matrices(max_rows=6, elements=count_floats),
           counts=feature_matrices(max_rows=3, elements=count_floats))
    @settings(max_examples=40, deadline=None)
    def test_inverse_count_round_trips_below_saturation(self, train, counts):
        transformer = CountTransformer(min_scale_count=600.0).fit(train)
        features = transformer.transform(counts)
        recovered = transformer.inverse_count(features)
        np.testing.assert_allclose(recovered, counts, atol=1e-6)


class TestBinaryTransformerProperties:
    @given(counts=feature_matrices(max_rows=5, elements=count_floats))
    @settings(max_examples=60, deadline=None)
    def test_output_is_binary(self, counts):
        out = BinaryTransformer().transform(counts)
        assert set(np.unique(out)) <= {0.0, 1.0}

    @given(counts=feature_matrices(max_rows=5, elements=count_floats),
           extra=st.floats(0.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_monotonic_in_counts(self, counts, extra):
        transformer = BinaryTransformer()
        assert np.all(transformer.transform(counts + extra)
                      >= transformer.transform(counts) - 1e-12)
