"""Property-based tests for the numpy neural-network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nn.activations import ReLU, Sigmoid, Tanh, softmax
from repro.nn.losses import SoftmaxCrossEntropy, one_hot
from repro.nn.network import NeuralNetwork

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False,
                          allow_infinity=False)


def logits_matrices(max_rows=6, max_cols=5):
    return npst.arrays(np.float64,
                       st.tuples(st.integers(1, max_rows), st.integers(2, max_cols)),
                       elements=finite_floats)


class TestSoftmaxProperties:
    @given(logits=logits_matrices())
    @settings(max_examples=60, deadline=None)
    def test_rows_are_probability_distributions(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @given(logits=logits_matrices(), shift=finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, logits, shift):
        np.testing.assert_allclose(softmax(logits), softmax(logits + shift), atol=1e-9)

    @given(logits=logits_matrices(),
           temperature=st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_temperature_never_sharpens_distribution(self, logits, temperature):
        base = softmax(logits)
        heated = softmax(logits, temperature=temperature)
        assert heated.max() <= base.max() + 1e-9

    @given(logits=logits_matrices())
    @settings(max_examples=40, deadline=None)
    def test_argmax_is_temperature_invariant(self, logits):
        # Near-ties (within float64 resolution of the row max) are excluded:
        # dividing by the temperature can flip which of two numerically-equal
        # logits wins the argmax, which is not a property violation.
        gaps = np.sort(logits, axis=1)
        near_tie = np.any(np.abs(gaps[:, -1] - gaps[:, -2]) < 1e-9)
        if near_tie:
            return
        np.testing.assert_array_equal(np.argmax(softmax(logits), axis=1),
                                      np.argmax(softmax(logits, temperature=25.0), axis=1))


class TestActivationProperties:
    @given(x=npst.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 8)),
                         elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_relu_is_non_negative_and_idempotent(self, x):
        relu = ReLU()
        once = relu.forward(x)
        assert np.all(once >= 0.0)
        np.testing.assert_array_equal(relu.forward(once), once)

    @given(x=npst.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 8)),
                         elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_output_in_unit_interval(self, x):
        out = Sigmoid().forward(x)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    @given(x=npst.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 8)),
                         elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_tanh_is_odd_function(self, x):
        tanh = Tanh()
        np.testing.assert_allclose(tanh.forward(-x), -tanh.forward(x), atol=1e-12)


class TestLossProperties:
    @given(logits=logits_matrices(max_cols=2),
           labels_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cross_entropy_is_non_negative(self, logits, labels_seed):
        rng = np.random.default_rng(labels_seed)
        labels = rng.integers(0, logits.shape[1], size=logits.shape[0])
        assert SoftmaxCrossEntropy().forward(logits, labels) >= 0.0

    @given(labels_seed=st.integers(0, 2**31 - 1), n=st.integers(1, 8),
           k=st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_one_hot_rows_sum_to_one(self, labels_seed, n, k):
        rng = np.random.default_rng(labels_seed)
        labels = rng.integers(0, k, size=n)
        encoded = one_hot(labels, k)
        np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(n))
        np.testing.assert_array_equal(np.argmax(encoded, axis=1), labels)


class TestNetworkProperties:
    @given(x=npst.arrays(np.float64, st.tuples(st.integers(1, 6), st.just(7)),
                         elements=st.floats(0.0, 1.0)))
    @settings(max_examples=30, deadline=None)
    def test_predictions_are_valid_classes(self, x):
        network = NeuralNetwork.mlp([7, 6, 2], random_state=0)
        predictions = network.predict(x)
        assert set(np.unique(predictions)) <= {0, 1}

    @given(x=npst.arrays(np.float64, st.tuples(st.integers(1, 6), st.just(7)),
                         elements=st.floats(0.0, 1.0)))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_sum_to_one(self, x):
        network = NeuralNetwork.mlp([7, 5, 2], random_state=1)
        probs = network.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @given(x=npst.arrays(np.float64, st.tuples(st.just(3), st.just(7)),
                         elements=st.floats(0.0, 1.0)))
    @settings(max_examples=20, deadline=None)
    def test_binary_jacobian_rows_cancel(self, x):
        network = NeuralNetwork.mlp([7, 5, 2], random_state=2)
        jacobian = network.class_gradients(x)
        np.testing.assert_allclose(jacobian.sum(axis=1), 0.0, atol=1e-10)
