"""Property-based tests for attack invariants on the tiny trained models.

These use hypothesis to vary the attack operating point and assert the
threat-model invariants the paper's attacks must respect regardless of
strength: add-only perturbations, box constraints, and feature budgets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.fgsm import FgsmAttack
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack

operating_points = st.tuples(st.floats(0.0, 0.3), st.floats(0.0, 0.05))

common_settings = settings(max_examples=15, deadline=None,
                           suppress_health_check=[HealthCheck.function_scoped_fixture])


class TestJsmaInvariants:
    @given(point=operating_points)
    @common_settings
    def test_feasibility_at_any_operating_point(self, tiny_target, tiny_malware, point):
        theta, gamma = point
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        result = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features[:16])
        assert constraints.is_feasible(result.adversarial, result.original)

    @given(point=operating_points)
    @common_settings
    def test_perturbation_count_never_exceeds_budget(self, tiny_target, tiny_malware, point):
        theta, gamma = point
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        result = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features[:16])
        assert result.perturbed_features.max() <= constraints.max_features(
            tiny_malware.n_features)

    @given(point=operating_points)
    @common_settings
    def test_labels_of_original_rows_unchanged_by_attack_object(self, tiny_target,
                                                                tiny_malware, point):
        theta, gamma = point
        original = tiny_malware.features[:16].copy()
        JsmaAttack(tiny_target.network,
                   PerturbationConstraints(theta=theta, gamma=gamma)).run(original)
        np.testing.assert_array_equal(original, tiny_malware.features[:16])


class TestOtherAttackInvariants:
    @given(point=operating_points, seed=st.integers(0, 2**31 - 1))
    @common_settings
    def test_random_addition_feasible(self, tiny_target, tiny_malware, point, seed):
        theta, gamma = point
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        result = RandomAdditionAttack(tiny_target.network, constraints,
                                      random_state=seed).run(tiny_malware.features[:16])
        assert constraints.is_feasible(result.adversarial, result.original)

    @given(point=operating_points)
    @common_settings
    def test_fgsm_feasible(self, tiny_target, tiny_malware, point):
        theta, gamma = point
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        result = FgsmAttack(tiny_target.network, constraints).run(tiny_malware.features[:16])
        assert constraints.is_feasible(result.adversarial, result.original)

    @given(gamma=st.floats(0.0, 0.05))
    @common_settings
    def test_stronger_budget_never_raises_jsma_detection_much(self, tiny_target,
                                                              tiny_malware, gamma):
        weak = JsmaAttack(tiny_target.network,
                          PerturbationConstraints(theta=0.1, gamma=gamma))
        strong = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=min(gamma * 2, 1.0)))
        weak_rate = weak.run(tiny_malware.features[:24]).detection_rate
        strong_rate = strong.run(tiny_malware.features[:24]).detection_rate
        assert strong_rate <= weak_rate + 0.101
