"""Tests for FGSM, the random-addition baseline, transfer and black-box attacks."""

import numpy as np
import pytest

from repro.attacks.blackbox import BlackBoxFramework
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.fgsm import FgsmAttack
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack
from repro.attacks.transfer import TransferAttack
from repro.data.oracle import LabelOracle
from repro.exceptions import AttackError


class TestRandomAdditionAttack:
    def test_respects_constraints(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
        result = RandomAdditionAttack(tiny_target.network, constraints,
                                      random_state=0).run(tiny_malware.features)
        assert constraints.is_feasible(result.adversarial, result.original)

    def test_perturbs_exactly_budget_features(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        budget = constraints.max_features(tiny_malware.n_features)
        result = RandomAdditionAttack(tiny_target.network, constraints,
                                      random_state=0).run(tiny_malware.features)
        # Some chosen features may already sit at the box maximum and stay put.
        assert result.perturbed_features.max() <= budget

    def test_is_seeded(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        a = RandomAdditionAttack(tiny_target.network, constraints, random_state=3).run(
            tiny_malware.features)
        b = RandomAdditionAttack(tiny_target.network, constraints, random_state=3).run(
            tiny_malware.features)
        np.testing.assert_array_equal(a.adversarial, b.adversarial)

    def test_random_addition_barely_changes_detection(self, tiny_target, tiny_malware):
        """The paper's control: random feature addition is not an evasion attack."""
        baseline = tiny_target.detection_rate(tiny_malware.features)
        constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
        result = RandomAdditionAttack(tiny_target.network, constraints,
                                      random_state=0).run(tiny_malware.features)
        assert result.detection_rate > baseline - 0.15

    def test_jsma_is_much_stronger_than_random(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
        random_rate = RandomAdditionAttack(tiny_target.network, constraints,
                                           random_state=0).run(
            tiny_malware.features).detection_rate
        jsma_rate = JsmaAttack(tiny_target.network, constraints).run(
            tiny_malware.features).detection_rate
        assert jsma_rate < random_rate - 0.2


class TestFgsmAttack:
    def test_respects_add_only_and_box(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.05)
        result = FgsmAttack(tiny_target.network, constraints).run(tiny_malware.features)
        assert np.all(result.adversarial >= result.original - 1e-12)
        assert result.adversarial.max() <= 1.0

    def test_budget_respected(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.01)
        budget = constraints.max_features(tiny_malware.n_features)
        result = FgsmAttack(tiny_target.network, constraints).run(tiny_malware.features)
        assert result.perturbed_features.max() <= budget

    def test_reduces_detection_rate(self, tiny_target, tiny_malware):
        baseline = tiny_target.detection_rate(tiny_malware.features)
        constraints = PerturbationConstraints(theta=0.15, gamma=0.05)
        result = FgsmAttack(tiny_target.network, constraints).run(tiny_malware.features)
        assert result.detection_rate < baseline

    def test_zero_epsilon_is_identity(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.05)
        result = FgsmAttack(tiny_target.network, constraints, epsilon=0.0).run(
            tiny_malware.features)
        np.testing.assert_array_equal(result.adversarial, result.original)

    def test_negative_epsilon_rejected(self, tiny_target):
        with pytest.raises(AttackError):
            FgsmAttack(tiny_target.network, epsilon=-0.1)

    def test_single_iteration_reported(self, tiny_target, tiny_malware):
        result = FgsmAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02)).run(
            tiny_malware.features)
        assert np.all(result.iterations == 1)


class TestTransferAttack:
    def test_transfer_rate_definition(self, tiny_target, tiny_substitute, tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02),
                            early_stop=False)
        outcome = TransferAttack(attack, tiny_target.network).run(tiny_malware.features)
        assert outcome.transfer_rate == pytest.approx(1.0 - outcome.target_detection_rate)

    def test_reports_baseline_target_detection(self, tiny_target, tiny_substitute, tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02))
        outcome = TransferAttack(attack, tiny_target.network).run(tiny_malware.features)
        assert outcome.target_detection_rate_original == pytest.approx(
            tiny_target.detection_rate(tiny_malware.features))

    def test_greybox_attack_lowers_target_detection(self, tiny_target, tiny_substitute,
                                                    tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.03),
                            early_stop=False)
        outcome = TransferAttack(attack, tiny_target.network).run(tiny_malware.features)
        assert outcome.target_detection_rate < outcome.target_detection_rate_original

    def test_cross_feature_space_replay(self, tiny_target, tiny_substitute, tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.01),
                            early_stop=False)
        transfer = TransferAttack(attack, tiny_target.network)
        outcome = transfer.run(tiny_malware.features, target_features=tiny_malware.features)
        assert 0.0 <= outcome.target_detection_rate <= 1.0

    def test_cross_feature_space_sample_mismatch_rejected(self, tiny_target,
                                                          tiny_substitute, tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.01))
        transfer = TransferAttack(attack, tiny_target.network)
        with pytest.raises(AttackError):
            transfer.run(tiny_malware.features,
                         target_features=tiny_malware.features[:3])

    def test_summary_fields(self, tiny_target, tiny_substitute, tiny_malware):
        attack = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02))
        summary = TransferAttack(attack, tiny_target.network).run(
            tiny_malware.features).summary()
        for key in ("transfer_rate", "target_detection_rate",
                    "substitute_detection_rate", "gamma", "theta"):
            assert key in summary


class TestBlackBoxFramework:
    def test_end_to_end_engagement(self, tiny_target, tiny_corpus, tiny_malware, tiny_scale):
        oracle = LabelOracle(tiny_target)
        framework = BlackBoxFramework(
            oracle, scale=tiny_scale, augmentation_rounds=1,
            constraints=PerturbationConstraints(theta=0.1, gamma=0.02),
            random_state=0)
        report = framework.execute(tiny_corpus.validation.features,
                                   tiny_malware.features[:20])
        assert report.oracle_queries > 0
        assert 0.0 <= report.substitute_agreement <= 1.0
        assert 0.0 <= report.transfer.target_detection_rate <= 1.0

    def test_augmentation_grows_query_count(self, tiny_target, tiny_corpus, tiny_scale):
        seed = tiny_corpus.validation.features
        no_aug = BlackBoxFramework(LabelOracle(tiny_target), scale=tiny_scale,
                                   augmentation_rounds=0, random_state=0)
        no_aug.train_substitute(seed)
        with_aug = BlackBoxFramework(LabelOracle(tiny_target), scale=tiny_scale,
                                     augmentation_rounds=1, random_state=0)
        with_aug.train_substitute(seed)
        assert with_aug.oracle.queries_used > no_aug.oracle.queries_used

    def test_substitute_learns_oracle_boundary(self, tiny_target, tiny_corpus, tiny_scale):
        framework = BlackBoxFramework(LabelOracle(tiny_target), scale=tiny_scale,
                                      augmentation_rounds=1, random_state=0)
        substitute = framework.train_substitute(tiny_corpus.validation.features)
        test_features = tiny_corpus.test.features[:80]
        agreement = np.mean(substitute.predict(test_features)
                            == tiny_target.predict(test_features))
        assert agreement > 0.7

    def test_invalid_parameters_rejected(self, tiny_target):
        with pytest.raises(AttackError):
            BlackBoxFramework(LabelOracle(tiny_target), augmentation_rounds=-1)
        with pytest.raises(AttackError):
            BlackBoxFramework(LabelOracle(tiny_target), augmentation_step=0.0)
