"""Tests for the live grey-box source-modification attack."""

import numpy as np
import pytest

from repro.attacks.live_greybox import LiveGreyBoxAttack, LiveGreyBoxTrace
from repro.config import CLASS_MALWARE
from repro.exceptions import AttackError


@pytest.fixture(scope="module")
def live_attack(request):
    context = request.getfixturevalue("tiny_context")
    return LiveGreyBoxAttack(
        context.target_model.network,
        context.substitute_model.network,
        context.pipeline,
        random_state=1,
    )


@pytest.fixture(scope="module")
def malware_source(request):
    context = request.getfixturevalue("tiny_context")
    return context.generator.generate_source_samples(
        4, label=CLASS_MALWARE, source="train", rng_name="unit:live")[0]


class TestLiveGreyBoxAttack:
    def test_engine_confidence_in_unit_interval(self, live_attack, malware_source):
        confidence = live_attack.engine_confidence(malware_source)
        assert 0.0 <= confidence <= 1.0

    def test_choose_api_returns_catalog_name(self, live_attack, malware_source, tiny_context):
        api = live_attack.choose_api(malware_source)
        assert tiny_context.pipeline.catalog.monitored(api)

    def test_chosen_api_is_not_already_used(self, live_attack, malware_source):
        api = live_attack.choose_api(malware_source)
        assert not malware_source.uses_api(api)

    def test_run_produces_full_trace(self, live_attack, malware_source):
        trace = live_attack.run(malware_source, max_repetitions=4)
        assert trace.repetitions == [1, 2, 3, 4]
        assert len(trace.confidences) == 4
        assert len(trace.detected) == 4

    def test_trace_rows_start_with_original(self, live_attack, malware_source):
        trace = live_attack.run(malware_source, max_repetitions=3)
        rows = trace.rows()
        assert rows[0]["added_calls"] == 0
        assert rows[0]["confidence"] == pytest.approx(trace.original_confidence)
        assert len(rows) == 4

    def test_more_injections_do_not_increase_confidence_much(self, live_attack,
                                                             malware_source):
        trace = live_attack.run(malware_source, max_repetitions=6)
        assert trace.confidences[-1] <= trace.original_confidence + 0.05

    def test_mutation_preserves_source_functionality(self, live_attack, malware_source):
        api = live_attack.choose_api(malware_source)
        mutated = malware_source.add_api_call(api, times=5)
        assert mutated.preserves_functionality_of(malware_source)

    def test_rejects_clean_sample(self, live_attack, tiny_context):
        clean = tiny_context.generator.generate_source_samples(
            1, label=0, source="train", rng_name="unit:live_clean")[0]
        with pytest.raises(AttackError):
            live_attack.run(clean)

    def test_rejects_invalid_repetitions(self, live_attack, malware_source):
        with pytest.raises(AttackError):
            live_attack.run(malware_source, max_repetitions=0)

    def test_explicit_api_override(self, live_attack, malware_source):
        trace = live_attack.run(malware_source, max_repetitions=2, api="waitmessage")
        assert trace.injected_api == "waitmessage"


class TestLiveGreyBoxTrace:
    def test_evasion_repetitions_none_when_always_detected(self):
        trace = LiveGreyBoxTrace(sample_id="s", injected_api="a",
                                 repetitions=[1, 2], confidences=[0.9, 0.8],
                                 detected=[True, True], original_confidence=0.95)
        assert trace.evasion_repetitions is None

    def test_evasion_repetitions_first_undetected(self):
        trace = LiveGreyBoxTrace(sample_id="s", injected_api="a",
                                 repetitions=[1, 2, 3], confidences=[0.9, 0.4, 0.2],
                                 detected=[True, False, False], original_confidence=0.95)
        assert trace.evasion_repetitions == 2

    def test_final_confidence_defaults_to_original(self):
        trace = LiveGreyBoxTrace(sample_id="s", injected_api="a", repetitions=[],
                                 confidences=[], detected=[], original_confidence=0.7)
        assert trace.final_confidence == 0.7
