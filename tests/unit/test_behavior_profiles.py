"""Tests for the behaviour-profile library."""

import numpy as np
import pytest

from repro.apilog.api_catalog import default_catalog
from repro.apilog.behavior_profiles import (
    ApiUsage,
    BehaviorGroup,
    BehaviorProfile,
    ProfileLibrary,
    default_profile_library,
)
from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import ConfigurationError


class TestDefaultLibrary:
    def test_contains_both_classes(self):
        library = default_profile_library()
        assert library.for_label(CLASS_CLEAN)
        assert library.for_label(CLASS_MALWARE)

    def test_profile_names_are_unique(self):
        library = default_profile_library()
        names = [p.name for p in library]
        assert len(names) == len(set(names))

    def test_has_novel_families_for_both_classes(self):
        library = default_profile_library()
        novel = [p for p in library if p.novel]
        assert any(p.label == CLASS_MALWARE for p in novel)
        assert any(p.label == CLASS_CLEAN for p in novel)

    def test_for_label_excludes_novel_by_default(self):
        library = default_profile_library()
        assert all(not p.novel for p in library.for_label(CLASS_MALWARE))

    def test_every_profile_api_is_in_the_catalog(self):
        catalog = default_catalog()
        library = default_profile_library()
        missing = {api for profile in library for api in profile.api_names()
                   if not catalog.monitored(api)}
        assert missing == set(), f"profile APIs missing from the catalog: {sorted(missing)}"

    def test_malware_profiles_use_malicious_apis(self):
        library = default_profile_library()
        injector = library.by_name("malware_trojan_injector")
        assert "writeprocessmemory" in injector.api_names()

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            default_profile_library().by_name("nonexistent_family")


class TestSampling:
    def test_sample_counts_are_non_negative_ints(self):
        rng = np.random.default_rng(0)
        profile = default_profile_library().by_name("malware_ransomware")
        counts = profile.sample_counts(rng)
        assert all(isinstance(v, int) and v >= 0 for v in counts.values())

    def test_sampling_is_stochastic_but_seeded(self):
        profile = default_profile_library().by_name("clean_gui_utility")
        a = profile.sample_counts(np.random.default_rng(5))
        b = profile.sample_counts(np.random.default_rng(5))
        c = profile.sample_counts(np.random.default_rng(6))
        assert a == b
        assert a != c

    def test_intensity_scales_expected_volume(self):
        profile = default_profile_library().by_name("clean_installer")
        rng_low = np.random.default_rng(1)
        rng_high = np.random.default_rng(1)
        low = sum(profile.sample_counts(rng_low, intensity=0.5).values())
        high = sum(profile.sample_counts(rng_high, intensity=2.0).values())
        assert high > low

    def test_invalid_intensity_rejected(self):
        profile = default_profile_library().by_name("clean_installer")
        with pytest.raises(ConfigurationError):
            profile.sample_counts(np.random.default_rng(0), intensity=0.0)

    def test_sample_profile_respects_label(self):
        library = default_profile_library()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert library.sample_profile(CLASS_MALWARE, rng).label == CLASS_MALWARE
            assert library.sample_profile(CLASS_CLEAN, rng).label == CLASS_CLEAN

    def test_novel_probability_zero_never_draws_novel(self):
        library = default_profile_library()
        rng = np.random.default_rng(0)
        draws = [library.sample_profile(CLASS_MALWARE, rng, include_novel=True,
                                        novel_probability=0.0) for _ in range(30)]
        assert all(not p.novel for p in draws)

    def test_novel_probability_one_always_draws_novel(self):
        library = default_profile_library()
        rng = np.random.default_rng(0)
        draws = [library.sample_profile(CLASS_MALWARE, rng, include_novel=True,
                                        novel_probability=1.0) for _ in range(10)]
        assert all(p.novel for p in draws)


class TestValidation:
    def test_api_usage_requires_positive_mean(self):
        with pytest.raises(ConfigurationError):
            ApiUsage(api="writefile", mean_count=0.0)

    def test_group_probability_must_be_fraction(self):
        with pytest.raises(ConfigurationError):
            BehaviorGroup(name="bad", activation_probability=1.5,
                          usages=(ApiUsage("writefile", 1.0),))

    def test_group_requires_usages(self):
        with pytest.raises(ConfigurationError):
            BehaviorGroup(name="empty", activation_probability=0.5, usages=())

    def test_profile_requires_valid_label(self):
        group = BehaviorGroup(name="g", activation_probability=1.0,
                              usages=(ApiUsage("writefile", 1.0),))
        with pytest.raises(ConfigurationError):
            BehaviorProfile(name="p", label=3, groups=(group,))

    def test_library_rejects_duplicate_names(self):
        group = BehaviorGroup(name="g", activation_probability=1.0,
                              usages=(ApiUsage("writefile", 1.0),))
        profile = BehaviorProfile(name="dup", label=0, groups=(group,))
        with pytest.raises(ConfigurationError):
            ProfileLibrary((profile, profile))

    def test_empty_library_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileLibrary(())
