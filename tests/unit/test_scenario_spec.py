"""ScenarioSpec validation, JSON round-trips and grid expansion."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSpec


class TestValidation:
    def test_defaults_are_a_valid_whitebox_point(self):
        spec = ScenarioSpec()
        assert spec.attack == "jsma"
        assert spec.defense == "none"
        assert spec.model == "target"
        assert spec.sweep is None

    def test_model_kind_is_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(model="oracle")

    def test_sweep_name_is_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(sweep="epsilon")

    def test_negative_constraints_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(theta=-0.1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(gamma=-0.01)

    def test_sweep_values_require_a_sweep(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(sweep_values=(0.0, 0.01))

    def test_robustness_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(robustness_budget=0)

    def test_params_are_copied_not_aliased(self):
        params = {"early_stop": False}
        spec = ScenarioSpec(attack_params=params)
        params["early_stop"] = True
        assert spec.attack_params == {"early_stop": False}

    def test_sweep_strategy_is_validated(self):
        spec = ScenarioSpec(sweep="gamma", sweep_strategy="per_point")
        assert spec.sweep_strategy == "per_point"
        with pytest.raises(ConfigurationError):
            ScenarioSpec(sweep="gamma", sweep_strategy="memoized")

    def test_sweep_strategy_requires_a_sweep(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(sweep_strategy="replay")


class TestRoundTrip:
    def _rich_spec(self):
        return ScenarioSpec(
            attack="jsma", attack_params={"early_stop": False},
            defense="feature_squeezing",
            defense_params={"false_positive_budget": 0.1},
            model="substitute", scale="tiny", seed=7, dtype="float64",
            theta=0.1, gamma=0.005, sweep="gamma",
            sweep_values=(0.0, 0.005, 0.01), robustness_budget=5,
            label="round trip")

    def test_dict_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_json_is_plain_json(self):
        payload = json.loads(self._rich_spec().to_json())
        assert payload["sweep_values"] == [0.0, 0.005, 0.01]
        assert payload["attack_params"] == {"early_stop": False}

    def test_default_round_trip_is_identity(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario spec keys"):
            ScenarioSpec.from_dict({"attack": "jsma", "strength": 11})

    def test_null_params_in_spec_files_mean_no_overrides(self):
        spec = ScenarioSpec.from_json(
            '{"attack": "jsma", "attack_params": null, "defense_params": null}')
        assert spec.attack_params == {} and spec.defense_params == {}

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid scenario spec JSON"):
            ScenarioSpec.from_json("{not json")

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(["jsma"])

    def test_with_overrides_returns_modified_copy(self):
        spec = ScenarioSpec()
        changed = spec.with_overrides(defense="distillation", gamma=0.03)
        assert changed.defense == "distillation"
        assert changed.gamma == 0.03
        assert spec.defense == "none"


class TestGrid:
    def test_grid_covers_the_full_product(self):
        specs = ScenarioSpec.grid(
            attacks=["jsma", "fgsm"],
            defenses=["none", "feature_squeezing", "dim_reduction"],
            scale="tiny", seed=3)
        assert len(specs) == 6
        cells = {(s.attack, s.defense) for s in specs}
        assert cells == {(a, d) for a in ("jsma", "fgsm")
                         for d in ("none", "feature_squeezing", "dim_reduction")}
        assert all(s.scale == "tiny" and s.seed == 3 for s in specs)
        assert all(s.label == f"{s.attack} vs {s.defense}" for s in specs)

    def test_grid_entries_can_carry_params(self):
        specs = ScenarioSpec.grid(
            attacks=[{"id": "jsma", "params": {"early_stop": False}}],
            defenses=[{"id": "distillation", "params": {"temperature": 10.0}}])
        (spec,) = specs
        assert spec.attack_params == {"early_stop": False}
        assert spec.defense_params == {"temperature": 10.0}

    def test_grid_rejects_malformed_entries(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.grid(attacks=[{"params": {}}])
        with pytest.raises(ConfigurationError):
            ScenarioSpec.grid(defenses=[{"id": "none", "extra": 1}])
        with pytest.raises(ConfigurationError):
            ScenarioSpec.grid(attacks=[42])

    def test_grid_defenses_iterate_fastest(self):
        specs = ScenarioSpec.grid(attacks=["jsma", "fgsm"],
                                  defenses=["none", "feature_squeezing"])
        assert [(s.attack, s.defense) for s in specs] == [
            ("jsma", "none"), ("jsma", "feature_squeezing"),
            ("fgsm", "none"), ("fgsm", "feature_squeezing")]
