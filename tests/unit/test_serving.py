"""Unit tests for the serving layer: stats, micro-batcher, registry, loadgen."""

import numpy as np
import pytest

from repro.config import TINY_PROFILE
from repro.exceptions import ServingError
from repro.experiments.context import ExperimentContext
from repro.serving import (
    LoadGenerator,
    MicroBatcher,
    ModelRegistry,
    TrafficMix,
    bundle_version,
)
from repro.serving.stats import LatencyTracker, percentile
from repro.utils.artifact_cache import ArtifactCache


class FakeClock:
    """Deterministic, manually-advanced clock for batcher tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestStats:
    def test_percentile_bounds_are_validated(self):
        with pytest.raises(ServingError):
            percentile([1.0], 101.0)
        with pytest.raises(ServingError):
            percentile([], 50.0)

    def test_tracker_report(self):
        tracker = LatencyTracker()
        for latency in (1.0, 2.0, 3.0, 4.0):
            tracker.record(latency)
        report = tracker.report(elapsed_s=2.0)
        assert report.n_requests == 4
        assert report.requests_per_s == pytest.approx(2.0)
        assert report.mean_ms == pytest.approx(2.5)
        assert report.p50_ms == pytest.approx(2.5)
        assert report.p99_ms == pytest.approx(3.97)
        assert report.max_ms == pytest.approx(4.0)
        assert "4 requests" in report.render()
        assert "p99" in report.render()

    def test_tracker_record_batch_and_reset(self):
        tracker = LatencyTracker()
        tracker.record_batch(5.0, n_requests=3)
        assert tracker.count == 3
        tracker.reset()
        assert tracker.count == 0

    def test_empty_tracker_reports_zeroed_interval(self):
        # Reporting on an idle interval is well-defined, not an error: the
        # fleet aggregator and periodic reporters rely on this.
        report = LatencyTracker().report(1.0)
        assert report.n_requests == 0
        assert report.requests_per_s == 0.0
        assert report.mean_ms == report.p50_ms == report.p95_ms == 0.0
        assert report.p99_ms == report.max_ms == 0.0
        assert LatencyTracker().report(0.0).elapsed_s == 0.0
        assert "0 requests" in report.render()

    def test_nonempty_tracker_still_requires_positive_interval(self):
        tracker = LatencyTracker()
        tracker.record(1.0)
        with pytest.raises(ServingError):
            tracker.report(0.0)

    def test_report_is_invariant_to_observation_order(self):
        # A fleet merges per-worker latencies in worker order, not arrival
        # order: the summary must not depend on how observations interleave.
        latencies = [4.0, 1.0, 3.0, 1.0, 9.0, 2.0]
        shuffled, ordered = LatencyTracker(), LatencyTracker()
        shuffled.extend(latencies)
        ordered.extend(sorted(latencies))
        assert shuffled.report(2.0) == ordered.report(2.0)

    def test_duplicate_observations_each_count(self):
        # Batched scoring records the same latency for every request of a
        # fused batch; duplicates are real requests, never collapsed.
        tracker = LatencyTracker()
        tracker.extend([5.0, 5.0, 5.0, 1.0])
        report = tracker.report(1.0)
        assert report.n_requests == 4
        assert report.requests_per_s == pytest.approx(4.0)
        assert report.mean_ms == pytest.approx(4.0)
        assert report.p50_ms == pytest.approx(5.0)
        assert report.max_ms == pytest.approx(5.0)

    def test_out_of_order_timestamps_clamp_to_zero_latency(self):
        # A worker's flush can observe a finish time earlier than an
        # upstream enqueue stamp (clocks read in different processes); the
        # service clamps those to zero rather than recording negatives —
        # and the tracker itself refuses negative observations outright.
        tracker = LatencyTracker()
        tracker.record(max(0.0, (1.0 - 2.0) * 1000.0))
        assert tracker.latencies_ms == [0.0]
        with pytest.raises(ServingError):
            tracker.record(-0.001)
        with pytest.raises(ServingError):
            tracker.record_batch(-1.0, n_requests=2)

    def test_tracker_extend_merges_observations(self):
        left, right = LatencyTracker(), LatencyTracker()
        left.record(1.0)
        right.record_batch(3.0, n_requests=2)
        left.extend(right.latencies_ms)
        assert left.count == 3
        assert left.report(1.0).mean_ms == pytest.approx(7.0 / 3.0)
        with pytest.raises(ServingError):
            left.extend([-0.5])

    def test_negative_latency_rejected(self):
        with pytest.raises(ServingError):
            LatencyTracker().record(-1.0)
        with pytest.raises(ServingError):
            LatencyTracker().record_batch(-1.0, n_requests=2)


class TestMicroBatcher:
    def _batcher(self, **kwargs):
        flushed = []

        def flush_fn(batch):
            flushed.append(list(batch))
            return [item * 10 for item in batch]

        clock = kwargs.pop("clock", FakeClock())
        batcher = MicroBatcher(flush_fn, clock=clock, **kwargs)
        return batcher, flushed, clock

    def test_flushes_when_batch_fills(self):
        batcher, flushed, _ = self._batcher(max_batch_size=3)
        assert batcher.submit(1) == []
        assert batcher.submit(2) == []
        assert batcher.submit(3) == [10, 20, 30]
        assert flushed == [[1, 2, 3]]
        assert batcher.pending == 0
        assert batcher.n_flushes == 1
        assert batcher.batch_sizes == [3]

    def test_poll_flushes_only_after_deadline(self):
        batcher, _, clock = self._batcher(max_batch_size=100, max_delay_ms=5.0)
        batcher.submit(1)
        clock.advance(0.004)
        assert batcher.poll() == []          # 4ms < 5ms SLO: keep accumulating
        batcher.submit(2)
        clock.advance(0.002)                 # oldest item now waited 6ms
        assert batcher.poll() == [10, 20]
        assert batcher.poll() == []          # nothing pending any more

    def test_deadline_tracks_oldest_item(self):
        batcher, _, clock = self._batcher(max_batch_size=100, max_delay_ms=10.0)
        batcher.submit(1)
        first_deadline = batcher.deadline
        clock.advance(0.005)
        batcher.submit(2)                    # newer item must not extend the SLO
        assert batcher.deadline == first_deadline

    def test_explicit_flush_and_empty_flush(self):
        batcher, _, _ = self._batcher(max_batch_size=100)
        assert batcher.flush() == []
        batcher.submit(7)
        assert batcher.flush() == [70]

    def test_submit_many_collects_intermediate_flushes(self):
        batcher, flushed, _ = self._batcher(max_batch_size=2)
        results = batcher.submit_many([1, 2, 3, 4, 5])
        assert results == [10, 20, 30, 40]
        assert batcher.pending == 1
        assert flushed == [[1, 2], [3, 4]]

    def test_result_count_mismatch_raises(self):
        batcher = MicroBatcher(lambda batch: [], max_batch_size=1)
        with pytest.raises(ServingError):
            batcher.submit(1)

    def test_failed_flush_restores_pending_batch(self):
        calls = {"fail": True}

        def flush_fn(batch):
            if calls["fail"]:
                raise ServingError("one bad item")
            return [item * 10 for item in batch]

        clock = FakeClock()
        batcher = MicroBatcher(flush_fn, max_batch_size=3, clock=clock)
        batcher.submit(1)
        batcher.submit(2)
        deadline_before = batcher.deadline
        with pytest.raises(ServingError):
            batcher.submit(3)
        # A failing flush must not silently drop the queued items.
        assert batcher.pending == 3
        assert batcher.deadline == deadline_before
        assert batcher.n_flushes == 0
        calls["fail"] = False
        assert batcher.flush() == [10, 20, 30]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServingError):
            MicroBatcher(lambda batch: batch, max_batch_size=0)
        with pytest.raises(ServingError):
            MicroBatcher(lambda batch: batch, max_delay_ms=-1.0)


class TestBundleVersion:
    def test_version_is_deterministic(self):
        a = bundle_version("target", TINY_PROFILE, 1, "float64")
        b = bundle_version("target", TINY_PROFILE, 1, "float64")
        assert a == b and len(a) == 16

    def test_version_covers_name_scale_seed_dtype(self):
        base = bundle_version("target", TINY_PROFILE, 1, "float64")
        assert bundle_version("substitute", TINY_PROFILE, 1, "float64") != base
        assert bundle_version("target", TINY_PROFILE, 2, "float64") != base
        assert bundle_version("target", TINY_PROFILE, 1, "float32") != base
        assert bundle_version("target", TINY_PROFILE.with_overrides(train_clean=121),
                              1, "float64") != base


class TestModelRegistry:
    def test_unknown_model_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ServingError):
            registry.get("nonexistent", scale=TINY_PROFILE, seed=0)

    def test_default_builders_registered(self):
        assert ModelRegistry().available() == ["substitute", "target"]

    def test_register_validates_name(self):
        with pytest.raises(ServingError):
            ModelRegistry().register("", lambda ctx: None)

    def test_cold_build_then_warm_start(self, tmp_path):
        from repro.nn.engine import compute_dtype

        cache = ArtifactCache(tmp_path / "cache")
        context = ExperimentContext(scale=TINY_PROFILE, seed=11, cache=cache)
        cold = ModelRegistry(cache=cache)
        servable = cold.get("target", context=context)
        assert cold.cold_builds == 1
        assert servable.version == bundle_version("target", TINY_PROFILE, 11,
                                                  str(compute_dtype()))

        warm = ModelRegistry(cache=cache)
        restored = warm.get("target", scale=TINY_PROFILE, seed=11)
        assert warm.cold_builds == 0          # loaded from disk, not rebuilt
        assert restored.version == servable.version
        assert restored.scale == TINY_PROFILE
        assert restored.pipeline.is_fitted
        x = np.clip(np.random.default_rng(0).random((6, servable.n_features)), 0, 1)
        np.testing.assert_allclose(restored.model.predict_proba(x),
                                   servable.model.predict_proba(x), atol=1e-12)

    def test_repeated_get_reuses_in_process_instance(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        registry = ModelRegistry(cache=cache)
        context = ExperimentContext(scale=TINY_PROFILE, seed=12, cache=cache)
        first = registry.get("target", context=context)
        second = registry.get("target", context=context)
        assert first is second
        assert registry.cold_builds == 1


class TestScenarioBundles:
    def test_register_scenario_serves_defended_bundle(self, tiny_context):
        from repro.scenarios import ScenarioSpec

        registry = ModelRegistry()
        registry.register_scenario("squeezed_target", ScenarioSpec(
            defense="feature_squeezing", scale="tiny"))
        assert "squeezed_target" in registry.available()
        assert registry.scenario_for("squeezed_target").defense == \
            "feature_squeezing"

        servable = registry.get("squeezed_target", context=tiny_context)
        detector = registry.detector_for("squeezed_target", tiny_context)
        assert servable.model is tiny_context.target_model
        assert detector is not None and detector.name == "feature_squeezing"

        from repro.serving import ScoringService

        service = ScoringService(servable, detector=detector)
        assert service.defense_name == "feature_squeezing"

    def test_detector_guards_the_bundles_own_model(self, tiny_context):
        from repro.scenarios import ScenarioSpec

        registry = ModelRegistry()
        registry.register_scenario("squeezed_substitute", ScenarioSpec(
            model="substitute", defense="feature_squeezing", scale="tiny"))
        detector = registry.detector_for("squeezed_substitute", tiny_context)
        assert detector.network is tiny_context.substitute_model.network

    def test_scenario_spec_accepts_plain_mapping(self, tiny_context):
        registry = ModelRegistry()
        registry.register_scenario("greybox", {"model": "substitute",
                                               "defense": "none",
                                               "scale": "tiny"})
        servable = registry.get("greybox", context=tiny_context)
        assert servable.model is tiny_context.substitute_model
        assert registry.detector_for("greybox", tiny_context) is None

    def test_plain_bundles_have_no_detector(self, tiny_context):
        registry = ModelRegistry()
        assert registry.detector_for("target", tiny_context) is None
        assert registry.scenario_for("target") is None

    def test_register_scenario_rejects_defended_binary_bundles(self):
        from repro.scenarios import ScenarioSpec

        registry = ModelRegistry()
        with pytest.raises(ServingError, match="binary_substitute"):
            registry.register_scenario("bad", ScenarioSpec(
                model="binary_substitute", defense="feature_squeezing",
                scale="tiny"))
        # The undefended binary bundle stays serveable.
        registry.register_scenario("ok", ScenarioSpec(
            model="binary_substitute", defense="none", scale="tiny"))
        assert "ok" in registry.available()

    def test_register_scenario_validates_defense_and_params(self):
        from repro.exceptions import ConfigurationError
        from repro.scenarios import ScenarioSpec

        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.register_scenario("bad", ScenarioSpec(defense="tinfoil"))
        with pytest.raises(ConfigurationError):
            registry.register_scenario("bad", ScenarioSpec(
                defense="distillation",
                defense_params={"temperature": "hot"}))


class TestTrafficMix:
    def test_rejects_negative_and_zero_mix(self):
        with pytest.raises(ServingError):
            TrafficMix(clean=-0.1, malware=0.5, adversarial=0.6)
        with pytest.raises(ServingError):
            TrafficMix(clean=0.0, malware=0.0, adversarial=0.0)

    def test_probabilities_normalise(self):
        mix = TrafficMix(clean=2.0, malware=1.0, adversarial=1.0)
        np.testing.assert_allclose(mix.probabilities(), [0.5, 0.25, 0.25])

    def test_parse_round_trip_and_errors(self):
        mix = TrafficMix.parse("0.6, 0.3, 0.1")
        assert mix == TrafficMix(0.6, 0.3, 0.1)
        with pytest.raises(ServingError):
            TrafficMix.parse("0.5,0.5")
        with pytest.raises(ServingError):
            TrafficMix.parse("a,b,c")


class TestLoadGenerator:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(scale=TINY_PROFILE, seed=21)

    def test_stream_is_deterministic_per_seed(self, context):
        first = LoadGenerator(context, mix=TrafficMix(0.6, 0.4, 0.0), seed=5).generate(12)
        second = LoadGenerator(context, mix=TrafficMix(0.6, 0.4, 0.0), seed=5).generate(12)
        assert [r.request_id for r in first] == [r.request_id for r in second]
        assert [len(r.payload) for r in first] == [len(r.payload) for r in second]
        third = LoadGenerator(context, mix=TrafficMix(0.6, 0.4, 0.0), seed=6).generate(12)
        assert [r.request_id for r in first] != [r.request_id for r in third]

    def test_generate_respects_kinds_and_epochs(self, context):
        generator = LoadGenerator(context, mix=TrafficMix(1.0, 0.0, 0.0), seed=5)
        requests = generator.generate(5)
        assert all(r.request_id.startswith("clean-0-") for r in requests)
        again = generator.generate(5)
        assert all(r.request_id.startswith("clean-1-") for r in again)
        # Distinct epochs draw distinct samples from the substrate.
        assert {r.payload.sample_id for r in requests} != \
               {r.payload.sample_id for r in again}

    def test_invalid_request_count_rejected(self, context):
        with pytest.raises(ServingError):
            LoadGenerator(context).generate(0)

    def test_arrival_times_are_monotone_at_rate(self, context):
        generator = LoadGenerator(context, seed=5)
        times = generator.arrival_times(200, rate_per_s=1000.0)
        assert times.shape == (200,)
        assert np.all(np.diff(times) > 0)
        assert times[-1] == pytest.approx(0.2, rel=0.5)
        with pytest.raises(ServingError):
            generator.arrival_times(5, rate_per_s=0.0)
