"""Tests for the minimal-evasion-budget robustness analysis."""

import numpy as np
import pytest

from repro.evaluation.robustness import (
    RobustnessReport,
    compare_robustness,
    minimal_evasion_budget,
    robustness_from_trajectory,
)
from repro.exceptions import AttackError


class TestRobustnessReport:
    def _report(self):
        return RobustnessReport(theta=0.1, max_features=10,
                                minimal_features=np.array([1, 3, -1, 2, 3]))

    def test_evadable_fraction(self):
        assert self._report().evadable_fraction == pytest.approx(0.8)

    def test_fraction_evadable_within(self):
        report = self._report()
        assert report.fraction_evadable_within(1) == pytest.approx(0.2)
        assert report.fraction_evadable_within(3) == pytest.approx(0.8)
        assert report.fraction_evadable_within(0) == 0.0

    def test_median_budget_ignores_robust_samples(self):
        assert self._report().median_budget() == pytest.approx(2.5)

    def test_median_budget_nan_when_nothing_evades(self):
        report = RobustnessReport(theta=0.1, max_features=5,
                                  minimal_features=np.array([-1, -1]))
        assert np.isnan(report.median_budget())
        assert report.evadable_fraction == 0.0

    def test_histogram(self):
        assert self._report().histogram() == {1: 1, 2: 1, 3: 2}

    def test_summary_keys(self):
        summary = self._report().summary()
        assert summary["n_samples"] == 5
        assert "evadable_with_1_feature" in summary


class TestMinimalEvasionBudget:
    def test_budgets_within_bounds(self, tiny_target, tiny_malware):
        report = minimal_evasion_budget(tiny_target.network, tiny_malware.features,
                                        theta=0.1, max_features=20)
        assert report.n_samples == tiny_malware.n_samples
        evadable = report.minimal_features[report.minimal_features >= 0]
        assert evadable.size == 0 or evadable.max() <= 20
        assert np.all(report.minimal_features >= -1)

    def test_larger_theta_needs_no_more_features(self, tiny_target, tiny_malware):
        small = minimal_evasion_budget(tiny_target.network, tiny_malware.features,
                                       theta=0.05, max_features=25)
        large = minimal_evasion_budget(tiny_target.network, tiny_malware.features,
                                       theta=0.2, max_features=25)
        assert large.evadable_fraction >= small.evadable_fraction - 0.05

    def test_some_samples_evade_with_small_budget(self, tiny_target, tiny_malware):
        report = minimal_evasion_budget(tiny_target.network, tiny_malware.features,
                                        theta=0.15, max_features=30)
        assert report.evadable_fraction > 0.3

    def test_invalid_max_features_rejected(self, tiny_target, tiny_malware):
        with pytest.raises(AttackError):
            minimal_evasion_budget(tiny_target.network, tiny_malware.features,
                                   max_features=0)

    def test_compare_robustness_returns_one_row_per_model(self, tiny_target,
                                                          tiny_substitute, tiny_malware):
        rows = compare_robustness({"target": tiny_target.network,
                                   "substitute": tiny_substitute.network},
                                  tiny_malware.features[:24], max_features=20)
        assert [row["model"] for row in rows] == ["target", "substitute"]
        assert all(0.0 <= row["evadable_fraction"] <= 1.0 for row in rows)


class TestRobustnessFromTrajectory:
    """The minimal-budget distribution as a view over one instrumented run."""

    def _instrumented_run(self, network, features, budget):
        from repro.attacks.constraints import PerturbationConstraints
        from repro.attacks.jsma import JsmaAttack
        from repro.attacks.trajectory import TrajectoryRecorder

        gamma = min(1.0, budget / features.shape[1])
        attack = JsmaAttack(network,
                            PerturbationConstraints(theta=0.1, gamma=gamma),
                            early_stop=True)
        recorder = TrajectoryRecorder()
        result = attack.run(features, recorder=recorder)
        return recorder.trajectory, result

    def test_full_view_matches_direct_computation(self, tiny_target, tiny_malware):
        trajectory, result = self._instrumented_run(
            tiny_target.network, tiny_malware.features, 20)
        view = robustness_from_trajectory(trajectory, result)
        direct = minimal_evasion_budget(tiny_target.network,
                                        tiny_malware.features,
                                        theta=0.1, max_features=20)
        np.testing.assert_array_equal(view.minimal_features,
                                      direct.minimal_features)

    def test_truncated_view_matches_smaller_direct_runs(self, tiny_target,
                                                        tiny_malware):
        trajectory, result = self._instrumented_run(
            tiny_target.network, tiny_malware.features, 20)
        for budget in (1, 3, 8, 14):
            view = robustness_from_trajectory(trajectory, result,
                                              max_features=budget)
            direct = minimal_evasion_budget(tiny_target.network,
                                            tiny_malware.features,
                                            theta=0.1, max_features=budget)
            np.testing.assert_array_equal(view.minimal_features,
                                          direct.minimal_features)
            assert view.max_features == budget

    def test_budget_beyond_trajectory_rejected(self, tiny_target, tiny_malware):
        trajectory, result = self._instrumented_run(
            tiny_target.network, tiny_malware.features, 10)
        with pytest.raises(AttackError):
            robustness_from_trajectory(trajectory, result, max_features=25)

    def test_non_early_stop_trajectory_cannot_truncate(self, tiny_target,
                                                       tiny_malware):
        from repro.attacks.constraints import PerturbationConstraints
        from repro.attacks.jsma import JsmaAttack
        from repro.attacks.trajectory import TrajectoryRecorder

        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.03),
                            early_stop=False)
        recorder = TrajectoryRecorder()
        result = attack.run(tiny_malware.features, recorder=recorder)
        # The full view is still exact (it reads the final result) ...
        full = robustness_from_trajectory(recorder.trajectory, result)
        assert full.max_features == recorder.trajectory.budget
        # ... but truncation needs early-stop semantics.
        with pytest.raises(AttackError):
            robustness_from_trajectory(recorder.trajectory, result,
                                       max_features=2)
