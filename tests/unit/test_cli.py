"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import available_experiments


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table3"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.out is None

    def test_scale_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table3", "--scale", "huge"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in available_experiments():
            assert experiment_id in output

    def test_run_light_experiment_prints_rendering(self, capsys, tmp_path):
        code = main(["run", "table3", "--scale", "tiny", "--seed", "3",
                     "--out", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "waitmessage" in output
        assert (tmp_path / "table3.txt").exists()

    def test_run_table1_at_tiny_scale(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        assert "Table I" in capsys.readouterr().out
