"""Tests for the repro-experiments command-line interface."""

import json

import pytest

from repro.cli import build_parser, load_scoring_source, main
from repro.experiments import available_experiments


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "table3"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.out is None

    def test_scale_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table3", "--scale", "huge"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dtype_flag_parses_and_validates(self):
        args = build_parser().parse_args(["run", "table3", "--dtype", "float32"])
        assert args.dtype == "float32"
        assert build_parser().parse_args(["run", "table3"]).dtype is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table3", "--dtype", "float16"])

    def test_serve_command_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.model == "target"
        assert args.defense == "none"
        assert args.requests == 256
        assert args.batch_size == 32
        assert args.rate is None

    def test_score_command_requires_log_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["score"])
        args = build_parser().parse_args(["score", "sample.log", "--defense", "squeeze"])
        assert args.command == "score"
        assert str(args.log_file) == "sample.log"
        assert args.defense == "squeeze"

    def test_cache_info_command_parses(self):
        args = build_parser().parse_args(["cache-info", "--cache-dir", "x"])
        assert args.command == "cache-info"

    def test_sweep_strategy_flag_parses_and_validates(self):
        args = build_parser().parse_args(
            ["run-scenario", "--sweep", "gamma", "--sweep-strategy", "per_point"])
        assert args.sweep_strategy == "per_point"
        assert build_parser().parse_args(["run-scenario"]).sweep_strategy is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-scenario", "--sweep-strategy", "memoized"])

    def test_sweep_strategy_flag_fills_null_spec_field(self):
        from repro.cli import _fill_spec_defaults
        from repro.scenarios import ScenarioSpec

        args = build_parser().parse_args(
            ["run-scenario", "--sweep-strategy", "per_point"])
        sweep_spec = ScenarioSpec(sweep="gamma", scale="tiny")
        assert _fill_spec_defaults(sweep_spec, args).sweep_strategy == "per_point"
        # Spec files stay authoritative, and point runs have no sweep to fill.
        pinned = ScenarioSpec(sweep="gamma", sweep_strategy="replay", scale="tiny")
        assert _fill_spec_defaults(pinned, args).sweep_strategy == "replay"
        point = ScenarioSpec(scale="tiny")
        assert _fill_spec_defaults(point, args).sweep_strategy is None


class TestLoadScoringSource:
    def test_reads_table2_text_log(self, tmp_path):
        from repro.apilog.log_format import ApiLog

        log_file = tmp_path / "sample.log"
        log_file.write_text('WriteFile:13FBC1111 ()"61468"\n', encoding="utf-8")
        source = load_scoring_source(log_file)
        assert isinstance(source, ApiLog)
        assert source.api_counts() == {"writefile": 1}

    def test_reads_json_count_mapping(self, tmp_path):
        log_file = tmp_path / "sample.json"
        log_file.write_text(json.dumps({"writefile": 3, "winexec": 1}),
                            encoding="utf-8")
        assert load_scoring_source(log_file) == {"writefile": 3, "winexec": 1}

    def test_reads_json_api_counts_object(self, tmp_path):
        log_file = tmp_path / "sample.json"
        log_file.write_text(json.dumps({"api_counts": {"writefile": 2}}),
                            encoding="utf-8")
        assert load_scoring_source(log_file) == {"writefile": 2}

    def test_rejects_malformed_json_payload(self, tmp_path):
        from repro.exceptions import ServingError

        log_file = tmp_path / "sample.json"
        log_file.write_text(json.dumps({"unexpected": ["shape"]}), encoding="utf-8")
        with pytest.raises(ServingError):
            load_scoring_source(log_file)


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestScenarioCommands:
    def test_list_attacks_prints_registry(self, capsys):
        from repro.scenarios import ATTACKS

        assert main(["list-attacks"]) == 0
        output = capsys.readouterr().out
        for attack_id in ATTACKS.available():
            assert attack_id in output
        assert "early_stop" in output  # schemas are rendered

    def test_list_defenses_prints_registry_with_aliases(self, capsys):
        from repro.scenarios import DEFENSES

        assert main(["list-defenses"]) == 0
        output = capsys.readouterr().out
        for defense_id in DEFENSES.available():
            assert defense_id in output
        assert "squeeze" in output
        assert "temperature" in output

    def test_run_scenario_defense_choices_come_from_the_registry(self):
        args = build_parser().parse_args(
            ["run-scenario", "--defense", "feature_squeezing"])
        assert args.defense == "feature_squeezing"
        args = build_parser().parse_args(["run-scenario", "--defense", "squeeze"])
        assert args.defense == "squeeze"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-scenario", "--defense", "tinfoil"])

    def test_run_scenario_point_prints_report(self, capsys):
        code = main(["run-scenario", "--scale", "tiny", "--seed", "3",
                     "--attack", "random_addition", "--theta", "0.1",
                     "--gamma", "0.02"])
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario: attack=random_addition" in output
        assert "detection[target]" in output

    def test_run_scenario_json_output_is_parseable(self, capsys, tmp_path):
        code = main(["run-scenario", "--scale", "tiny", "--seed", "3",
                     "--attack", "random_addition", "--sweep", "gamma",
                     "--sweep-values", "0,0.01", "--json",
                     "--out", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack"] == "random_addition"
        assert len(payload["curve"]["points"]) == 2
        assert (tmp_path / "scenario.txt").exists()

    def test_run_scenario_from_spec_file(self, capsys, tmp_path):
        from repro.scenarios import ScenarioSpec

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(ScenarioSpec(
            attack="random_addition", scale="tiny", seed=3,
            theta=0.1, gamma=0.02).to_json(), encoding="utf-8")
        assert main(["run-scenario", "--spec", str(spec_file)]) == 0
        assert "attack=random_addition" in capsys.readouterr().out

    def test_run_scenario_rejects_unknown_attack_param(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="no parameter"):
            main(["run-scenario", "--scale", "tiny",
                  "--attack-params", '{"warp": 9}'])

    def test_run_scenario_spec_array_runs_every_spec(self, capsys, tmp_path):
        from repro.scenarios import ScenarioSpec

        spec_file = tmp_path / "specs.json"
        specs = [ScenarioSpec(attack="random_addition", scale="tiny", seed=3,
                              theta=0.1, gamma=0.02).to_dict(),
                 ScenarioSpec(attack="random_addition", scale="tiny", seed=3,
                              theta=0.1, gamma=0.03).to_dict()]
        spec_file.write_text(json.dumps(specs), encoding="utf-8")
        assert main(["run-scenario", "--spec", str(spec_file),
                     "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "2 cells" in output
        assert "gamma=0.03" in output

    def test_run_scenario_spec_array_json_output(self, capsys, tmp_path):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(
            [{"attack": "random_addition", "scale": "tiny", "seed": 3}]),
            encoding="utf-8")
        assert main(["run-scenario", "--spec", str(spec_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cells"] == 1
        assert payload["reports"][0]["attack"] == "random_addition"

    def test_run_scenario_rejects_malformed_spec_file(self, tmp_path):
        from repro.exceptions import ConfigurationError

        spec_file = tmp_path / "broken.json"
        spec_file.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid scenario spec"):
            main(["run-scenario", "--spec", str(spec_file)])


class TestRunGridCommand:
    def test_run_grid_parses_defaults(self):
        args = build_parser().parse_args(["run-grid"])
        assert args.attacks == "jsma"
        assert args.defenses == "none"
        assert args.workers == 1

    def test_run_grid_serial_prints_cells(self, capsys):
        # A single-cell grid renders the one report directly.
        assert main(["run-grid", "--attacks", "random_addition",
                     "--defenses", "none", "--scale", "tiny", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "attack=random_addition" in output
        assert "detection[target]" in output

    def test_run_grid_multi_cell_renders_summary_table(self, capsys):
        assert main(["run-grid", "--attacks", "random_addition",
                     "--defenses", "none,feature_squeezing",
                     "--model", "substitute",
                     "--scale", "tiny", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "random_addition vs none" in output
        assert "random_addition vs feature_squeezing" in output
        assert "2 cells" in output

    def test_run_grid_parallel_json(self, capsys):
        assert main(["run-grid",
                     "--attacks", '[{"id": "random_addition"}]',
                     "--defenses", "none,feature_squeezing",
                     "--model", "substitute",
                     "--scale", "tiny", "--seed", "3",
                     "--workers", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cells"] == 2
        assert payload["n_workers"] == 2
        defenses = [report["defense"] for report in payload["reports"]]
        assert defenses == ["none", "feature_squeezing"]

    def test_run_grid_rejects_bad_json_axis(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="invalid JSON"):
            main(["run-grid", "--attacks", "[not json", "--scale", "tiny"])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in available_experiments():
            assert experiment_id in output

    def test_run_light_experiment_prints_rendering(self, capsys, tmp_path):
        code = main(["run", "table3", "--scale", "tiny", "--seed", "3",
                     "--out", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "waitmessage" in output
        assert (tmp_path / "table3.txt").exists()

    def test_run_table1_at_tiny_scale(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestServingCommands:
    def test_serve_replays_stream_and_reports(self, capsys, tmp_path):
        code = main(["serve", "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--requests", "16", "--batch-size", "8",
                     "--mix", "0.6,0.4,0", "--out", str(tmp_path / "out")])
        assert code == 0
        output = capsys.readouterr().out
        assert "scoring service — model target" in output
        assert "fused batches" in output
        assert "p95" in output
        assert (tmp_path / "out" / "serve.txt").exists()

    def test_serve_warm_start_uses_cached_bundle(self, capsys, tmp_path):
        argv = ["serve", "--scale", "tiny", "--seed", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--requests", "8", "--mix", "1,0,0"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        version = [line for line in first.splitlines() if "model target v" in line]
        assert version and version[0] in second  # same bundle version served

    def test_score_prints_verdict_json(self, capsys, tmp_path):
        log_file = tmp_path / "sample.log"
        log_file.write_text('WriteFile:13FBC1111 ()"61468"\n'
                            'WinExec:13FBC2222 ()"61468"\n', encoding="utf-8")
        code = main(["score", str(log_file), "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request_id"] == "sample"
        assert payload["verdict"] in ("clean", "malware")
        assert payload["model_name"] == "target"
        assert 0.0 <= payload["malware_probability"] <= 1.0

    def test_score_with_dtype_flag_builds_float32_bundle(self, capsys, tmp_path):
        log_file = tmp_path / "sample.json"
        log_file.write_text(json.dumps({"writefile": 2}), encoding="utf-8")
        code = main(["score", str(log_file), "--scale", "tiny", "--seed", "4",
                     "--dtype", "float32"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] in ("clean", "malware")

    def test_cache_info_lists_entries(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["serve", "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(cache_dir),
                     "--requests", "8", "--mix", "1,0,0"]) == 0
        capsys.readouterr()
        assert main(["cache-info", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "cache root" in output
        assert "serving" in output
        assert "target" in output
        assert "entries" in output and "bytes total" in output
        assert "KiB" in output or "MiB" in output  # human-readable sizes

    def test_cache_info_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache-info", "--cache-dir", str(tmp_path / "empty")]) == 0
        assert "(no cached artifacts)" in capsys.readouterr().out

    def test_serve_with_worker_fleet(self, capsys, tmp_path):
        code = main(["serve", "--scale", "tiny", "--seed", "4",
                     "--workers", "2", "--requests", "16", "--batch-size", "8",
                     "--mix", "0.6,0.4,0", "--out", str(tmp_path / "out")])
        assert code == 0
        output = capsys.readouterr().out
        assert "scoring service — model target" in output
        assert "workers=2" in output
        assert "fleet: 2 workers" in output
        assert "worker 0:" in output and "worker 1:" in output
        assert "p99" in output
        assert (tmp_path / "out" / "serve.txt").exists()

    def test_serve_fleet_verdicts_match_single_service(self, capsys):
        argv = ["serve", "--scale", "tiny", "--seed", "4",
                "--requests", "16", "--mix", "0.5,0.5,0"]
        assert main(argv) == 0
        single = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        fleet = capsys.readouterr().out

        def verdict_lines(text):
            # The per-kind breakdown lines (indented); the totals line also
            # carries a mode-specific "fused batches" suffix, so compare the
            # kind counts, which must match exactly.
            return [line for line in text.splitlines()
                    if line.startswith("  ") and "flagged malware" in line]

        assert verdict_lines(single) == verdict_lines(fleet)
        assert verdict_lines(single)


class TestObservabilityCommands:
    def test_serve_observe_and_store_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--observe", "--store", "runs", "--run-id", "r1"])
        assert args.observe is True
        assert str(args.store) == "runs"
        assert args.run_id == "r1"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.observe is False
        assert defaults.store is None
        assert defaults.run_id is None

    def test_report_parser_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])
        args = build_parser().parse_args(["report", "--store", "runs"])
        assert args.import_bench is None
        args = build_parser().parse_args(
            ["report", "--store", "runs", "--import-bench"])
        assert args.import_bench == []
        args = build_parser().parse_args(
            ["report", "--store", "runs", "--import-bench", "a.json", "--json"])
        assert [str(p) for p in args.import_bench] == ["a.json"]
        assert args.as_json is True

    def test_serve_observe_prints_instrumentation_summary(self, capsys, tmp_path):
        code = main(["serve", "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--requests", "16", "--batch-size", "8",
                     "--mix", "0.5,0.5,0", "--observe"])
        assert code == 0
        output = capsys.readouterr().out
        assert "instrumentation:" in output
        assert "serve.requests = 16" in output
        assert "batcher.batch_size" in output
        assert "span.service.flush" in output

    def test_serve_observe_leaves_verdicts_identical(self, capsys, tmp_path):
        argv = ["serve", "--scale", "tiny", "--seed", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--requests", "16", "--mix", "0.5,0.5,0"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--observe"]) == 0
        observed = capsys.readouterr().out

        def verdict_lines(text):
            return [line for line in text.splitlines()
                    if line.startswith("  ") and "flagged malware" in line]

        assert verdict_lines(plain) == verdict_lines(observed)
        assert verdict_lines(plain)

    def test_serve_records_and_report_surfaces_drift(self, capsys, tmp_path):
        store = tmp_path / "store"
        for seed, run_id in (("4", "run-s4"), ("5", "run-s5")):
            code = main(["serve", "--scale", "tiny", "--seed", seed,
                         "--cache-dir", str(tmp_path / "cache"),
                         "--requests", "24", "--batch-size", "8",
                         "--mix", "0.4,0.3,0.3", "--observe",
                         "--store", str(store), "--run-id", run_id])
            assert code == 0
            assert f"recorded run {run_id}" in capsys.readouterr().out

        assert main(["report", "--store", str(store)]) == 0
        report = capsys.readouterr().out
        # Two seeds build two model versions: the drift and p99 sections
        # must both render, computed purely from the recorded store.
        assert "2 recorded runs (2 serve, 0 bench), 2 model versions" in report
        assert "evasion drift [" in report
        assert "evasion across versions" in report
        assert "p99 regressions" in report
        assert "run-s4" in report and "run-s5" in report

        assert main(["report", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_serve_runs"] == 2
        assert len(payload["model_versions"]) == 2

    def test_report_import_bench_is_idempotent(self, capsys, tmp_path):
        store = tmp_path / "store"
        bench = tmp_path / "BENCH_demo.json"
        bench.write_text(json.dumps({"section": {"metric": 1.5}}),
                         encoding="utf-8")
        argv = ["report", "--store", str(store), "--import-bench", str(bench)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "imported 1 benchmark file(s): bench:BENCH_demo" in first
        assert "imported benchmarks: bench:BENCH_demo" in first
        assert main(argv) == 0
        assert "imported 0 benchmark file(s)" in capsys.readouterr().out

    def test_report_on_empty_store(self, capsys, tmp_path):
        assert main(["report", "--store", str(tmp_path / "empty")]) == 0
        assert "no recorded runs" in capsys.readouterr().out


class TestTraceAndTopCommands:
    def test_slo_flags_parse_with_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--slo-ms", "25", "--slo-breach", "shed"])
        assert args.slo_ms == 25.0
        assert args.slo_objective == 0.99
        assert args.slo_breach == "shed"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.slo_ms is None
        assert defaults.slo_breach == "alert"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--slo-breach", "explode"])

    def test_top_parser_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top"])
        args = build_parser().parse_args(["top", "--store", "runs", "--once"])
        assert args.once is True
        assert args.interval == 1.0
        assert args.frames is None
        args = build_parser().parse_args(
            ["top", "--store", "runs", "--frames", "3", "--interval", "0.1"])
        assert args.frames == 3 and args.interval == 0.1

    def test_export_metrics_parser_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export-metrics"])
        args = build_parser().parse_args(
            ["export-metrics", "--store", "runs", "--out", "prom"])
        assert str(args.store) == "runs" and str(args.out) == "prom"

    def test_serve_with_slo_prints_trace_summary(self, capsys, tmp_path):
        store = tmp_path / "store"
        code = main(["serve", "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--requests", "16", "--batch-size", "8",
                     "--mix", "0.5,0.5,0", "--observe",
                     "--store", str(store), "--slo-ms", "250"])
        assert code == 0
        output = capsys.readouterr().out
        assert "traces: 16 requests traced — 16 complete, 0 orphans" in output
        assert "request" in output  # the sample span tree renders
        assert "slo alerts: none fired" in output

        # The replay published a live snapshot that `top` can render after
        # the fact, and `export-metrics` can turn into Prometheus text.
        assert main(["top", "--store", str(store), "--once"]) == 0
        dashboard = capsys.readouterr().out
        assert "repro top — finished" in dashboard
        assert "progress" in dashboard and "latency" in dashboard
        assert "slo" in dashboard

        out_dir = tmp_path / "prom"
        assert main(["export-metrics", "--store", str(store),
                     "--out", str(out_dir)]) == 0
        exposition = capsys.readouterr().out
        assert "repro_serve_requests_total 16" in exposition
        assert (out_dir / "metrics.prom").read_text(
            encoding="utf-8") == exposition

    def test_forced_breach_fires_alert_and_sheds(self, capsys, tmp_path):
        code = main(["serve", "--scale", "tiny", "--seed", "4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--requests", "24", "--batch-size", "8",
                     "--mix", "0.5,0.5,0", "--observe",
                     "--slo-ms", "0.0001", "--slo-breach", "shed"])
        assert code == 0
        output = capsys.readouterr().out
        assert "slo alerts: 1 fired (slo.latency)" in output
        assert "serve.sheds" in output

    def test_top_without_snapshot_renders_placeholder(self, capsys, tmp_path):
        assert main(["top", "--store", str(tmp_path / "empty"),
                     "--once"]) == 0
        assert "no live snapshot" in capsys.readouterr().out

    def test_export_metrics_without_snapshot_fails(self, capsys, tmp_path):
        assert main(["export-metrics", "--store",
                     str(tmp_path / "empty")]) == 1
        err = capsys.readouterr().err
        assert "no live snapshot" in err and "serve --observe" in err

    def test_report_out_creates_nested_parent_dirs(self, capsys, tmp_path):
        out = tmp_path / "deep" / "nested" / "reports"
        assert main(["report", "--store", str(tmp_path / "empty"),
                     "--out", str(out)]) == 0
        assert (out / "report.txt").exists()
        assert "no recorded runs" in (out / "report.txt").read_text(
            encoding="utf-8")
