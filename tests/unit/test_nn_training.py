"""Tests for the Trainer, TrainingHistory and EarlyStopping."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import Adam
from repro.nn.training import EarlyStopping, Trainer, TrainingHistory


class TestTrainerBasics:
    def test_fit_learns_separable_problem(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 16, 2], random_state=0)
        trainer = Trainer(network, optimizer=Adam(0.01), batch_size=32, epochs=25,
                          random_state=0)
        history = trainer.fit(x, y)
        assert history.train_accuracy[-1] > 0.95

    def test_history_lengths_match_epochs(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 8, 2], random_state=0)
        trainer = Trainer(network, epochs=5, batch_size=16, random_state=0)
        history = trainer.fit(x, y)
        assert history.epochs_run == 5
        assert len(history.train_loss) == 5

    def test_validation_curves_recorded(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 8, 2], random_state=0)
        trainer = Trainer(network, epochs=3, batch_size=16, random_state=0)
        history = trainer.fit(x[:120], y[:120], x[120:], y[120:])
        assert len(history.val_loss) == 3
        assert len(history.val_accuracy) == 3

    def test_loss_decreases_over_training(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 16, 2], random_state=1)
        trainer = Trainer(network, optimizer=Adam(0.01), epochs=20, batch_size=32,
                          random_state=1)
        history = trainer.fit(x, y)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_training_is_reproducible_with_same_seed(self, toy_classification):
        x, y = toy_classification

        def train_once():
            network = NeuralNetwork.mlp([12, 8, 2], random_state=7)
            Trainer(network, optimizer=Adam(0.01), epochs=4, batch_size=16,
                    random_state=3).fit(x, y)
            return network.predict_logits(x[:5])

        np.testing.assert_allclose(train_once(), train_once())

    def test_soft_labels_accepted(self, toy_classification):
        x, y = toy_classification
        soft = np.stack([1.0 - y, y.astype(float)], axis=1) * 0.8 + 0.1
        network = NeuralNetwork.mlp([12, 8, 2], random_state=0)
        history = Trainer(network, epochs=3, batch_size=16, random_state=0).fit(x, soft)
        assert history.epochs_run == 3

    def test_epoch_callback_invoked(self, toy_classification):
        x, y = toy_classification
        seen = []
        network = NeuralNetwork.mlp([12, 8, 2], random_state=0)
        Trainer(network, epochs=3, batch_size=32, random_state=0,
                epoch_callback=lambda epoch, history: seen.append(epoch)).fit(x, y)
        assert seen == [0, 1, 2]


class TestTrainerValidationErrors:
    def test_invalid_batch_size(self, small_mlp):
        with pytest.raises(ConfigurationError):
            Trainer(small_mlp, batch_size=0)

    def test_invalid_epochs(self, small_mlp):
        with pytest.raises(ConfigurationError):
            Trainer(small_mlp, epochs=0)

    def test_mismatched_targets(self, small_mlp):
        trainer = Trainer(small_mlp, epochs=1)
        with pytest.raises(ShapeError):
            trainer.fit(np.zeros((4, 12)), np.zeros(3, dtype=int))

    def test_val_monitor_without_val_data_raises(self, small_mlp):
        trainer = Trainer(small_mlp, epochs=1,
                          early_stopping=EarlyStopping(monitor="val_loss"))
        with pytest.raises(ConfigurationError):
            trainer.fit(np.zeros((4, 12)), np.zeros(4, dtype=int))


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0, monitor="train_loss")
        assert stopper.update(1.0) is False
        assert stopper.update(1.0) is False
        assert stopper.update(1.0) is True

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0, monitor="train_loss")
        stopper.update(1.0)
        stopper.update(0.9)
        stopper.update(0.95)
        assert stopper.update(0.8) is False

    def test_accuracy_monitor_maximizes(self):
        stopper = EarlyStopping(patience=1, monitor="train_accuracy")
        stopper.update(0.5)
        assert stopper.update(0.9) is False
        assert stopper.update(0.85) is True

    def test_invalid_monitor_rejected(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(monitor="val_f1")

    def test_trainer_stops_early(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 16, 2], random_state=0)
        trainer = Trainer(network, optimizer=Adam(0.05), epochs=60, batch_size=32,
                          random_state=0,
                          early_stopping=EarlyStopping(patience=2, monitor="train_loss"))
        history = trainer.fit(x, y)
        assert history.epochs_run < 60


class TestTrainingHistory:
    def test_best_epoch_for_loss(self):
        history = TrainingHistory(train_loss=[1.0, 0.4, 0.6])
        assert history.best_epoch("train_loss") == 1

    def test_best_epoch_for_accuracy(self):
        history = TrainingHistory(train_loss=[1, 1, 1],
                                  train_accuracy=[0.5, 0.9, 0.8])
        assert history.best_epoch("train_accuracy") == 1

    def test_best_epoch_without_values_raises(self):
        with pytest.raises(ConfigurationError):
            TrainingHistory().best_epoch("val_loss")

    def test_as_dict_contains_all_curves(self):
        history = TrainingHistory(train_loss=[1.0], train_accuracy=[0.5])
        as_dict = history.as_dict()
        assert set(as_dict) == {"train_loss", "train_accuracy", "val_loss", "val_accuracy"}
