"""Tests for the corpus generator and the label oracle."""

import numpy as np
import pytest

from repro.config import CLASS_CLEAN, CLASS_MALWARE, TINY_PROFILE
from repro.data.generator import CorpusGenerator
from repro.data.oracle import LabelOracle
from repro.exceptions import AttackError, DatasetError
from repro.features.pipeline import FeaturePipeline
from repro.features.transformation import BinaryTransformer


class TestCorpusGenerator:
    def test_split_sizes_match_profile(self, tiny_corpus, tiny_scale):
        assert tiny_corpus.train.n_samples == tiny_scale.train_total
        assert tiny_corpus.validation.n_samples == tiny_scale.val_total
        assert tiny_corpus.test.n_samples == tiny_scale.test_total

    def test_class_counts_match_profile(self, tiny_corpus, tiny_scale):
        counts = tiny_corpus.train.class_counts()
        assert counts["clean"] == tiny_scale.train_clean
        assert counts["malware"] == tiny_scale.train_malware

    def test_features_are_in_unit_interval(self, tiny_corpus):
        for split in (tiny_corpus.train, tiny_corpus.validation, tiny_corpus.test):
            assert split.features.min() >= 0.0
            assert split.features.max() <= 1.0

    def test_feature_dimension_is_491(self, tiny_corpus):
        assert tiny_corpus.train.n_features == 491

    def test_pipeline_is_fitted(self, tiny_corpus):
        assert tiny_corpus.pipeline.is_fitted

    def test_metadata_attached(self, tiny_corpus):
        assert tiny_corpus.train.sample_ids is not None
        assert tiny_corpus.train.families is not None
        assert tiny_corpus.train.os_versions is not None

    def test_test_set_contains_novel_families(self, tiny_corpus):
        train_families = set(tiny_corpus.train.families)
        test_families = set(tiny_corpus.test.families)
        assert test_families - train_families, "test distribution shift missing"

    def test_generation_is_deterministic(self, tiny_scale):
        a = CorpusGenerator(scale=tiny_scale, seed=99).generate_corpus()
        b = CorpusGenerator(scale=tiny_scale, seed=99).generate_corpus()
        np.testing.assert_allclose(a.train.features, b.train.features)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)

    def test_different_seeds_differ(self, tiny_scale):
        a = CorpusGenerator(scale=tiny_scale, seed=1).generate_corpus()
        b = CorpusGenerator(scale=tiny_scale, seed=2).generate_corpus()
        assert not np.allclose(a.train.features, b.train.features)

    def test_table1_rows_shape(self, tiny_corpus):
        rows = tiny_corpus.table1_rows()
        assert len(rows) == 3
        assert rows[0][0] == "Training Set"

    def test_classes_are_separable(self, tiny_corpus):
        # A trivial centroid classifier should already beat chance by a wide
        # margin — this is what makes the detector trainable at all.
        train = tiny_corpus.train
        clean_centroid = train.clean_only().features.mean(axis=0)
        malware_centroid = train.malware_only().features.mean(axis=0)
        test = tiny_corpus.test
        distance_clean = np.linalg.norm(test.features - clean_centroid, axis=1)
        distance_malware = np.linalg.norm(test.features - malware_centroid, axis=1)
        predictions = (distance_malware < distance_clean).astype(int)
        accuracy = float(np.mean(predictions == test.labels))
        assert accuracy > 0.7

    def test_generate_source_samples_validation(self, tiny_scale):
        generator = CorpusGenerator(scale=tiny_scale, seed=0)
        with pytest.raises(DatasetError):
            generator.generate_source_samples(0, CLASS_MALWARE)
        with pytest.raises(DatasetError):
            generator.generate_source_samples(3, 7)
        with pytest.raises(DatasetError):
            generator.generate_source_samples(3, CLASS_MALWARE, source="prod")

    def test_attacker_corpus_with_own_binary_pipeline(self, tiny_scale):
        generator = CorpusGenerator(scale=tiny_scale, seed=5)
        pipeline = FeaturePipeline(catalog=generator.catalog,
                                   transformer=BinaryTransformer())
        data = generator.generate_attacker_corpus(30, 30, pipeline=pipeline)
        assert data.n_samples == 60
        assert set(np.unique(data.features)) <= {0.0, 1.0}

    def test_attacker_corpus_without_pipeline_returns_raw_counts(self, tiny_scale):
        generator = CorpusGenerator(scale=tiny_scale, seed=5)
        data = generator.generate_attacker_corpus(10, 10, pipeline=None)
        assert data.features.max() > 1.0  # raw counts, not normalised


class TestLabelOracle:
    def test_labels_match_model_predictions(self, tiny_target, tiny_corpus):
        oracle = LabelOracle(tiny_target)
        features = tiny_corpus.test.features[:20]
        np.testing.assert_array_equal(oracle.labels(features),
                                      tiny_target.predict(features))

    def test_query_counter_increments(self, tiny_target, tiny_corpus):
        oracle = LabelOracle(tiny_target)
        oracle.labels(tiny_corpus.test.features[:7])
        oracle.labels(tiny_corpus.test.features[:3])
        assert oracle.queries_used == 10

    def test_budget_enforced(self, tiny_target, tiny_corpus):
        oracle = LabelOracle(tiny_target, query_budget=5)
        oracle.labels(tiny_corpus.test.features[:5])
        with pytest.raises(AttackError):
            oracle.labels(tiny_corpus.test.features[:1])

    def test_queries_remaining(self, tiny_target, tiny_corpus):
        oracle = LabelOracle(tiny_target, query_budget=10)
        oracle.labels(tiny_corpus.test.features[:4])
        assert oracle.queries_remaining == 6
        assert LabelOracle(tiny_target).queries_remaining is None

    def test_scores_require_opt_in(self, tiny_target, tiny_corpus):
        strict = LabelOracle(tiny_target)
        with pytest.raises(AttackError):
            strict.scores(tiny_corpus.test.features[:2])
        leaky = LabelOracle(tiny_target, return_scores=True)
        scores = leaky.scores(tiny_corpus.test.features[:2])
        assert scores.shape == (2,)

    def test_reset_clears_counter(self, tiny_target, tiny_corpus):
        oracle = LabelOracle(tiny_target, query_budget=5)
        oracle.labels(tiny_corpus.test.features[:5])
        oracle.reset()
        assert oracle.queries_used == 0
        oracle.labels(tiny_corpus.test.features[:5])

    def test_invalid_budget_rejected(self, tiny_target):
        with pytest.raises(AttackError):
            LabelOracle(tiny_target, query_budget=0)
