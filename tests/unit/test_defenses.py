"""Tests for the four paper defenses and the ensemble."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.defenses.adversarial_training import AdversarialTrainingDefense, deduplicate
from repro.defenses.base import ModelBackedDetector
from repro.defenses.dim_reduction import DimensionalityReductionDefense, ReducedInputDetector
from repro.defenses.distillation import DefensiveDistillation
from repro.defenses.ensemble import EnsembleDefense, EnsembleDetector
from repro.defenses.feature_squeezing import (
    FeatureSqueezingDefense,
    SqueezedDetector,
    binary_squeeze,
    bit_depth_squeeze,
    small_count_squeeze,
)
from repro.exceptions import DefenseError


@pytest.fixture(scope="module")
def adversarial_examples(request):
    """Grey-box adversarial examples at the paper's defense operating point."""
    context = request.getfixturevalue("tiny_context")
    return context.greybox_adversarial(theta=0.1, gamma=0.02)


class TestDeduplicate:
    def test_removes_exact_duplicates(self):
        features = np.vstack([np.zeros((2, 4)), np.ones((3, 4))])
        labels = np.array([0, 0, 1, 1, 1])
        dataset = Dataset(features=features, labels=labels)
        assert deduplicate(dataset).n_samples == 2

    def test_keeps_distinct_rows(self):
        dataset = Dataset(features=np.arange(12).reshape(4, 3) / 12.0,
                          labels=np.array([0, 0, 1, 1]))
        assert deduplicate(dataset).n_samples == 4


class TestAdversarialTraining:
    def test_table5_datasets_include_adversarial_examples(self, tiny_context,
                                                          adversarial_examples):
        defense = AdversarialTrainingDefense(scale=tiny_context.scale, random_state=0)
        data = defense.build_datasets(tiny_context.corpus.train,
                                      tiny_context.corpus.test, adversarial_examples)
        assert data.n_adversarial_train > 0
        assert data.train.n_samples > tiny_context.corpus.train.n_samples
        assert len(data.table5_rows()) == 2

    def test_rejects_mislabelled_adversarial_set(self, tiny_context, adversarial_examples):
        defense = AdversarialTrainingDefense(scale=tiny_context.scale)
        wrong = Dataset(features=adversarial_examples.features,
                        labels=np.zeros(adversarial_examples.n_samples, dtype=int))
        with pytest.raises(DefenseError):
            defense.build_datasets(tiny_context.corpus.train,
                                   tiny_context.corpus.test, wrong)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(DefenseError):
            AdversarialTrainingDefense(adv_train_fraction=0.0)
        with pytest.raises(DefenseError):
            AdversarialTrainingDefense(malware_train_fraction=1.0)

    def test_retrained_detector_recovers_adversarial_detection(self, tiny_context,
                                                               adversarial_examples):
        target = tiny_context.target_model
        undefended_rate = target.detection_rate(adversarial_examples.features)
        defense = AdversarialTrainingDefense(scale=tiny_context.scale, random_state=0)
        detector = defense.fit(tiny_context.corpus.train, tiny_context.corpus.test,
                               adversarial_examples,
                               validation=tiny_context.corpus.validation)
        defended_rate = detector.detection_rate(adversarial_examples.features)
        assert defended_rate > undefended_rate + 0.3

    def test_retrained_detector_keeps_clean_accuracy(self, tiny_context,
                                                     adversarial_examples):
        defense = AdversarialTrainingDefense(scale=tiny_context.scale, random_state=0)
        detector = defense.fit(tiny_context.corpus.train, tiny_context.corpus.test,
                               adversarial_examples)
        clean_report = detector.report(tiny_context.corpus.test.clean_only())
        assert clean_report.tnr > 0.8


class TestDefensiveDistillation:
    def test_invalid_temperature_rejected(self):
        with pytest.raises(DefenseError):
            DefensiveDistillation(temperature=0.0)

    def test_produces_teacher_and_student(self, tiny_context):
        defense = DefensiveDistillation(temperature=50.0, scale=tiny_context.scale,
                                        random_state=0)
        detector = defense.fit(tiny_context.corpus.train, tiny_context.corpus.validation)
        assert defense.teacher is not None
        assert defense.student is not None
        assert detector is defense.detector

    def test_student_predicts_at_temperature_one(self, tiny_context):
        defense = DefensiveDistillation(temperature=50.0, scale=tiny_context.scale,
                                        random_state=0)
        defense.fit(tiny_context.corpus.train)
        assert defense.student.network.temperature == 1.0

    def test_student_still_classifies_reasonably(self, tiny_context):
        defense = DefensiveDistillation(temperature=50.0, scale=tiny_context.scale,
                                        random_state=0)
        detector = defense.fit(tiny_context.corpus.train)
        report = detector.report(tiny_context.corpus.validation)
        assert report.accuracy > 0.7


class TestFeatureSqueezers:
    def test_bit_depth_squeeze_quantises(self):
        squeezed = bit_depth_squeeze(np.array([[0.0, 0.49, 1.0]]), bits=1)
        np.testing.assert_allclose(squeezed, [[0.0, 0.0, 1.0]])

    def test_bit_depth_rejects_invalid_bits(self):
        with pytest.raises(DefenseError):
            bit_depth_squeeze(np.zeros((1, 2)), bits=0)

    def test_binary_squeeze(self):
        np.testing.assert_allclose(binary_squeeze(np.array([[0.0, 0.2]]), threshold=0.1),
                                   [[0.0, 1.0]])

    def test_small_count_squeeze_removes_small_values(self):
        squeezed = small_count_squeeze(np.array([[0.05, 0.5]]), threshold=0.12)
        np.testing.assert_allclose(squeezed, [[0.0, 0.5]])

    def test_small_count_squeeze_does_not_modify_input(self):
        original = np.array([[0.05, 0.5]])
        small_count_squeeze(original)
        np.testing.assert_allclose(original, [[0.05, 0.5]])


class TestFeatureSqueezingDefense:
    def test_threshold_calibrated_on_legitimate_data(self, tiny_context):
        defense = FeatureSqueezingDefense(false_positive_budget=0.05)
        detector = defense.fit(tiny_context.target_model.network,
                               tiny_context.corpus.validation)
        assert detector.threshold == defense.threshold_
        assert detector.threshold >= 0.0

    def test_false_positive_budget_respected_on_calibration_data(self, tiny_context):
        defense = FeatureSqueezingDefense(false_positive_budget=0.1)
        detector = defense.fit(tiny_context.target_model.network,
                               tiny_context.corpus.validation)
        flagged = detector.is_adversarial(tiny_context.corpus.validation.features)
        assert flagged.mean() <= 0.1 + 1e-9

    def test_detector_flags_more_adversarial_than_clean(self, tiny_context,
                                                        adversarial_examples):
        defense = FeatureSqueezingDefense()
        detector = defense.fit(tiny_context.target_model.network,
                               tiny_context.corpus.validation)
        adv_rate = detector.is_adversarial(adversarial_examples.features).mean()
        clean_rate = detector.is_adversarial(
            tiny_context.corpus.test.clean_only().features).mean()
        assert adv_rate >= clean_rate

    def test_prediction_combines_model_and_detector(self, tiny_context,
                                                    adversarial_examples):
        defense = FeatureSqueezingDefense()
        detector = defense.fit(tiny_context.target_model.network,
                               tiny_context.corpus.validation)
        squeezing_detection = detector.detection_rate(adversarial_examples.features)
        plain_detection = tiny_context.target_model.detection_rate(
            adversarial_examples.features)
        assert squeezing_detection >= plain_detection


class TestDimensionalityReduction:
    def test_invalid_components_rejected(self):
        with pytest.raises(DefenseError):
            DimensionalityReductionDefense(n_components=0)

    def test_detector_projects_before_classifying(self, tiny_context):
        defense = DimensionalityReductionDefense(n_components=10,
                                                 scale=tiny_context.scale,
                                                 random_state=0)
        detector = defense.fit(tiny_context.corpus.train, tiny_context.corpus.validation)
        assert isinstance(detector, ReducedInputDetector)
        projected = detector.project(tiny_context.corpus.test.features[:5])
        assert projected.shape == (5, 10)

    def test_reduced_detector_classifies_reasonably(self, tiny_context):
        defense = DimensionalityReductionDefense(n_components=10,
                                                 scale=tiny_context.scale,
                                                 random_state=0)
        detector = defense.fit(tiny_context.corpus.train)
        report = detector.report(tiny_context.corpus.validation)
        assert report.accuracy > 0.7

    def test_reduced_detector_improves_adversarial_detection(self, tiny_context,
                                                             adversarial_examples):
        defense = DimensionalityReductionDefense(n_components=10,
                                                 scale=tiny_context.scale,
                                                 random_state=0)
        detector = defense.fit(tiny_context.corpus.train)
        plain = tiny_context.target_model.detection_rate(adversarial_examples.features)
        reduced = detector.detection_rate(adversarial_examples.features)
        assert reduced > plain


class TestEnsemble:
    def test_requires_members(self):
        with pytest.raises(DefenseError):
            EnsembleDetector([])

    def test_unknown_voting_rejected(self, tiny_context):
        member = ModelBackedDetector(tiny_context.target_model, name="m")
        with pytest.raises(DefenseError):
            EnsembleDetector([member], voting="veto")

    def test_single_member_average_matches_member(self, tiny_context, tiny_malware):
        member = ModelBackedDetector(tiny_context.target_model, name="m")
        ensemble = EnsembleDefense(voting="average").fit([member])
        np.testing.assert_array_equal(ensemble.predict(tiny_malware.features),
                                      member.predict(tiny_malware.features))

    def test_any_voting_is_at_least_as_aggressive(self, tiny_context, tiny_malware,
                                                  adversarial_examples):
        target_member = ModelBackedDetector(tiny_context.target_model, name="target")
        defense = DimensionalityReductionDefense(n_components=10,
                                                 scale=tiny_context.scale,
                                                 random_state=0)
        reduced_member = defense.fit(tiny_context.corpus.train)
        any_vote = EnsembleDetector([target_member, reduced_member], voting="any")
        rate_any = any_vote.detection_rate(adversarial_examples.features)
        rate_each = max(target_member.detection_rate(adversarial_examples.features),
                        reduced_member.detection_rate(adversarial_examples.features))
        assert rate_any >= rate_each - 1e-9

    def test_confidence_in_unit_interval(self, tiny_context, tiny_malware):
        member = ModelBackedDetector(tiny_context.target_model, name="m")
        ensemble = EnsembleDetector([member, member], voting="average")
        confidence = ensemble.malware_confidence(tiny_malware.features)
        assert confidence.min() >= 0.0
        assert confidence.max() <= 1.0


class TestFusedDecide:
    """decide() must equal (malware_confidence, predict) in fewer forwards."""

    @pytest.fixture()
    def squeezed(self, tiny_context):
        return FeatureSqueezingDefense().fit(tiny_context.target_model.network,
                                             tiny_context.corpus.validation)

    def test_squeezed_decide_matches_separate_surfaces(self, squeezed,
                                                       tiny_malware):
        features = tiny_malware.features
        confidences, labels = squeezed.decide(features)
        np.testing.assert_allclose(confidences,
                                   squeezed.malware_confidence(features),
                                   atol=1e-12)
        np.testing.assert_array_equal(labels, squeezed.predict(features))

    def test_squeezed_decide_halves_network_forwards(self, squeezed,
                                                     tiny_malware,
                                                     monkeypatch):
        calls = {"n": 0}
        original = type(squeezed.network).predict_proba

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(squeezed.network), "predict_proba", counting)
        squeezed.decide(tiny_malware.features)
        fused = calls["n"]
        calls["n"] = 0
        squeezed.malware_confidence(tiny_malware.features)
        squeezed.predict(tiny_malware.features)
        assert fused == 2          # one original + one squeezed forward
        assert calls["n"] > fused  # the separate surfaces recompute

    @pytest.mark.parametrize("voting", ["average", "any", "majority"])
    def test_ensemble_decide_matches_separate_surfaces(self, tiny_context,
                                                       tiny_malware, squeezed,
                                                       voting):
        members = [ModelBackedDetector(tiny_context.target_model, name="m"),
                   squeezed]
        ensemble = EnsembleDetector(members, voting=voting)
        features = tiny_malware.features
        confidences, labels = ensemble.decide(features)
        np.testing.assert_allclose(confidences,
                                   ensemble.malware_confidence(features),
                                   atol=1e-12)
        np.testing.assert_array_equal(labels, ensemble.predict(features))

    def test_model_backed_decide_matches_separate_surfaces(self, tiny_context,
                                                           tiny_malware):
        member = ModelBackedDetector(tiny_context.target_model, name="m")
        confidences, labels = member.decide(tiny_malware.features)
        np.testing.assert_allclose(confidences,
                                   member.malware_confidence(tiny_malware.features),
                                   atol=1e-12)
        np.testing.assert_array_equal(labels, member.predict(tiny_malware.features))
