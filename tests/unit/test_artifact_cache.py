"""Tests for the persistent experiment-artifact cache."""

import threading
import time

import numpy as np
import pytest

from repro.config import TINY_PROFILE
from repro.data.dataset import Dataset
from repro.exceptions import SerializationError
from repro.experiments.context import ExperimentContext
from repro.utils.artifact_cache import ArtifactCache, default_cache_root


class TestKeys:
    def test_key_is_deterministic(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.key_for("target", seed=1, scale={"name": "tiny"}) == \
               cache.key_for("target", seed=1, scale={"name": "tiny"})

    def test_key_depends_on_components(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        base = cache.key_for("target", seed=1)
        assert cache.key_for("target", seed=2) != base
        assert cache.key_for("substitute", seed=1) != base
        assert cache.key_for("target", seed=1, dtype="float32") != base

    def test_key_order_insensitive(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.key_for("k", a=1, b=2) == cache.key_for("k", b=2, a=1)

    def test_default_root_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_root() == tmp_path / "env-cache"
        assert ArtifactCache().root == tmp_path / "env-cache"


class TestLoadOrBuild:
    def _dataset(self) -> Dataset:
        return Dataset(features=np.linspace(0, 1, 12).reshape(4, 3),
                       labels=np.array([0, 1, 0, 1]), name="toy")

    def test_builds_on_miss_and_loads_on_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = {"build": 0}

        def build() -> Dataset:
            calls["build"] += 1
            return self._dataset()

        key = cache.key_for("dataset", seed=0)
        save = lambda ds, path: ds.save(path / "data")
        load = lambda path: Dataset.load(path / "data")

        first = cache.load_or_build("dataset", key, build, save, load)
        assert calls["build"] == 1
        assert cache.has("dataset", key)
        second = cache.load_or_build("dataset", key, build, save, load)
        assert calls["build"] == 1  # warm hit: no rebuild
        np.testing.assert_array_equal(second.features, first.features)
        np.testing.assert_array_equal(second.labels, first.labels)

    def test_incomplete_entry_is_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=1)
        # Simulate a crash mid-save: directory exists, marker missing.
        cache.path_for("dataset", key).mkdir(parents=True)
        assert not cache.has("dataset", key)
        result = cache.load_or_build(
            "dataset", key, self._dataset,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data"))
        assert cache.has("dataset", key)
        assert result.n_samples == 4

    def test_corrupt_entry_is_evicted_and_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=2)
        path = cache.path_for("dataset", key)
        path.mkdir(parents=True)
        (path / "COMPLETE").touch()  # marker present, payload missing
        result = cache.load_or_build(
            "dataset", key, self._dataset,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data"))
        assert result.n_samples == 4
        assert cache.has("dataset", key)

    def test_entry_is_stamped_with_package_version(self, tmp_path):
        from repro.version import __version__

        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=3)
        cache.load_or_build("dataset", key, self._dataset,
                            lambda ds, path: ds.save(path / "data"),
                            lambda path: Dataset.load(path / "data"))
        entries = cache.entries()
        assert len(entries) == 1
        assert entries[0].package_version == __version__
        assert entries[0].compatible
        assert entries[0].created_at is not None

    def test_entry_from_other_package_version_is_refused_and_rebuilt(self, tmp_path):
        import json

        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=4)
        calls = {"build": 0}

        def build() -> Dataset:
            calls["build"] += 1
            return self._dataset()

        save = lambda ds, path: ds.save(path / "data")
        load = lambda path: Dataset.load(path / "data")
        cache.load_or_build("dataset", key, build, save, load)
        assert calls["build"] == 1

        # Simulate an entry written by an older release of the package.
        meta_path = cache.path_for("dataset", key) / "cache-meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["package_version"] = "0.0.1"
        meta_path.write_text(json.dumps(meta), encoding="utf-8")

        assert not cache.has("dataset", key)        # refused, not served
        assert not cache.entries()[0].compatible
        cache.load_or_build("dataset", key, build, save, load)
        assert calls["build"] == 2                  # rebuilt under this version
        assert cache.has("dataset", key)

    def test_unstamped_legacy_entry_is_treated_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=5)
        path = cache.path_for("dataset", key)
        self._dataset().save(path / "data")
        (path / "COMPLETE").touch()                 # pre-stamping layout
        assert not cache.has("dataset", key)
        result = cache.load_or_build(
            "dataset", key, self._dataset,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data"))
        assert result.n_samples == 4
        assert cache.has("dataset", key)

    def test_entries_reports_sizes_and_totals(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.entries() == []
        for seed in (0, 1):
            key = cache.key_for("dataset", seed=seed)
            cache.load_or_build("dataset", key, self._dataset,
                                lambda ds, path: ds.save(path / "data"),
                                lambda path: Dataset.load(path / "data"))
        entries = cache.entries()
        assert len(entries) == 2
        assert all(entry.kind == "dataset" for entry in entries)
        assert all(entry.size_bytes > 0 and entry.n_files >= 2 for entry in entries)
        assert cache.total_size_bytes() == sum(e.size_bytes for e in entries)

    def test_invalidate_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for seed in (0, 1):
            key = cache.key_for("dataset", seed=seed)
            cache.load_or_build("dataset", key, self._dataset,
                                lambda ds, path: ds.save(path / "data"),
                                lambda path: Dataset.load(path / "data"))
        key0 = cache.key_for("dataset", seed=0)
        assert cache.invalidate("dataset", key0)
        assert not cache.has("dataset", key0)
        assert not cache.invalidate("dataset", key0)
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestConcurrentWriters:
    """Threads as a proxy for parallel worker processes: the per-entry lock
    file and the atomic temp-dir-then-rename publication must hold for both
    (``flock`` serialises distinct fds within one process exactly as it does
    across processes)."""

    def _dataset(self) -> Dataset:
        return Dataset(features=np.linspace(0, 1, 12).reshape(4, 3),
                       labels=np.array([0, 1, 0, 1]), name="toy")

    def test_concurrent_load_or_build_builds_exactly_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=0)
        build_calls = []
        results = {}
        barrier = threading.Barrier(4)

        def build() -> Dataset:
            build_calls.append(threading.get_ident())
            time.sleep(0.05)  # widen the window a losing racer would hit
            return self._dataset()

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = cache.load_or_build(
                "dataset", key, build,
                lambda ds, path: ds.save(path / "data"),
                lambda path: Dataset.load(path / "data"))

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(build_calls) == 1            # no double-build
        assert len(results) == 4
        for dataset in results.values():
            np.testing.assert_array_equal(dataset.features,
                                          self._dataset().features)
        assert cache.has("dataset", key)
        assert len(cache.entries()) == 1        # no stray tmp/partial entries

    def test_failed_save_leaves_no_entry_and_releases_lock(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=1)

        def bad_save(ds, path):
            (path / "partial").write_text("...", encoding="utf-8")
            raise SerializationError("disk full")

        with pytest.raises(SerializationError):
            cache.load_or_build("dataset", key, self._dataset, bad_save,
                                lambda path: Dataset.load(path / "data"))
        assert not cache.has("dataset", key)
        assert not cache.path_for("dataset", key).exists()   # atomic: no debris
        # The lock was released: the next builder proceeds immediately.
        result = cache.load_or_build(
            "dataset", key, self._dataset,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data"))
        assert result.n_samples == 4
        assert cache.has("dataset", key)

    def test_stale_tmp_dirs_are_swept_and_ignored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=2)
        stale = cache.root / "dataset" / f".tmp-{key}-999-deadbeef"
        stale.mkdir(parents=True)
        (stale / "junk").write_text("crashed build", encoding="utf-8")
        assert cache.entries() == []            # tmp dirs are not entries
        cache.load_or_build("dataset", key, self._dataset,
                            lambda ds, path: ds.save(path / "data"),
                            lambda path: Dataset.load(path / "data"))
        assert not stale.exists()               # swept under the lock
        assert [entry.key for entry in cache.entries()] == [key]

    def test_lock_files_are_invisible_to_entries_and_survive_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=3)
        cache.load_or_build("dataset", key, self._dataset,
                            lambda ds, path: ds.save(path / "data"),
                            lambda path: Dataset.load(path / "data"))
        lock_files = list((cache.root / "dataset").glob("*.lock"))
        assert lock_files                        # the build left its lock file
        assert [entry.key for entry in cache.entries()] == [key]
        assert cache.clear() == 1                # locks don't count as entries
        assert cache.entries() == []
        # Lock files are deliberately NOT unlinked: a concurrent flock holder
        # must keep its inode, or two builders could hold "the" lock at once.
        assert list((cache.root / "dataset").glob("*.lock")) == lock_files
        # And a post-clear build still works through the surviving lock file.
        cache.load_or_build("dataset", key, self._dataset,
                            lambda ds, path: ds.save(path / "data"),
                            lambda path: Dataset.load(path / "data"))
        assert cache.has("dataset", key)

    def test_lock_timeout_raises_instead_of_hanging(self, tmp_path):
        cache = ArtifactCache(tmp_path, lock_timeout_s=0.2)
        key = cache.key_for("dataset", seed=4)
        entered = threading.Event()

        def slow_build() -> Dataset:
            entered.set()
            time.sleep(1.0)
            return self._dataset()

        holder = threading.Thread(target=lambda: cache.load_or_build(
            "dataset", key, slow_build,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data")))
        holder.start()
        try:
            assert entered.wait(timeout=5)
            with pytest.raises(SerializationError, match="timed out"):
                cache.load_or_build(
                    "dataset", key, self._dataset,
                    lambda ds, path: ds.save(path / "data"),
                    lambda path: Dataset.load(path / "data"))
        finally:
            holder.join(timeout=30)

    def test_concurrent_contexts_share_one_corpus_build(self, tmp_path):
        # The integration-shaped version of the satellite: two contexts
        # warm-starting from one cache dir race on the corpus entry.
        cache_root = tmp_path / "cache"
        corpora = {}
        barrier = threading.Barrier(2)

        def worker(index: int) -> None:
            context = ExperimentContext(scale=TINY_PROFILE, seed=55,
                                        cache=ArtifactCache(cache_root))
            barrier.wait()
            corpora[index] = context.corpus

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(corpora) == 2
        np.testing.assert_array_equal(corpora[0].train.features,
                                      corpora[1].train.features)
        cache = ArtifactCache(cache_root)
        assert sum(entry.kind == "corpus" for entry in cache.entries()) == 1


class TestStaleLocks:
    """The O_EXCL spin path must sweep lock files whose holder died, so a
    crashed builder never stalls concurrent builders for ``lock_timeout_s``.
    ``fcntl`` is monkeypatched away to force the portable spin path (the
    ``flock`` path needs no sweeping — the kernel releases with the holder)."""

    def _dataset(self) -> Dataset:
        return Dataset(features=np.linspace(0, 1, 12).reshape(4, 3),
                       labels=np.array([0, 1, 0, 1]), name="toy")

    def _build(self, cache: ArtifactCache, key: str) -> Dataset:
        return cache.load_or_build(
            "dataset", key, self._dataset,
            lambda ds, path: ds.save(path / "data"),
            lambda path: Dataset.load(path / "data"))

    def _dead_pid(self) -> int:
        import subprocess
        import sys

        probe = subprocess.run([sys.executable, "-c", "import os; print(os.getpid())"],
                               capture_output=True, text=True, check=True)
        return int(probe.stdout.strip())

    def test_flock_path_stamps_holder_pid(self, tmp_path):
        import os

        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=0)
        self._build(cache, key)
        lock_path = cache.root / "dataset" / f"{key}.lock"
        assert lock_path.read_text(encoding="ascii").strip() == str(os.getpid())

    def test_dead_holder_lock_is_swept_instead_of_waited_on(self, tmp_path,
                                                            monkeypatch):
        import time

        monkeypatch.setattr("repro.utils.artifact_cache.fcntl", None)
        cache = ArtifactCache(tmp_path, lock_timeout_s=30.0)
        key = cache.key_for("dataset", seed=1)
        lock_path = cache.root / "dataset" / f"{key}.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.write_text(str(self._dead_pid()), encoding="ascii")
        started = time.monotonic()
        result = self._build(cache, key)
        # Regression: this used to block the full lock_timeout_s.
        assert time.monotonic() - started < 5.0
        assert result.n_samples == 4
        assert cache.n_stale_locks_swept == 1

    def test_killed_lock_holder_does_not_stall_next_builder(self, tmp_path,
                                                            monkeypatch):
        import subprocess
        import sys
        import time

        # A real crashed holder: the subprocess acquires the spin lock (its
        # PID stamped inside) and an injected ``exit`` fault at the
        # ``cache.lock`` site kills it mid-build, releasing nothing.
        code = f"""
import repro.utils.artifact_cache as ac
ac.fcntl = None
from repro.reliability import FaultPlan, FaultSpec

plan = FaultPlan(specs=(FaultSpec(site="cache.lock", action="exit"),))
cache = ac.ArtifactCache({str(tmp_path)!r}, injector=plan.injector())
with cache._entry_lock("dataset", "deadkey"):
    raise AssertionError("the injected exit must fire first")
"""
        holder = subprocess.run([sys.executable, "-c", code],
                                capture_output=True, text=True)
        assert holder.returncode == 1, holder.stderr
        lock_path = tmp_path / "dataset" / "deadkey.lock"
        assert lock_path.exists()               # died holding the lock
        assert lock_path.read_text(encoding="ascii").strip().isdigit()

        monkeypatch.setattr("repro.utils.artifact_cache.fcntl", None)
        cache = ArtifactCache(tmp_path, lock_timeout_s=30.0)
        started = time.monotonic()
        result = self._build(cache, "deadkey")
        assert time.monotonic() - started < 10.0
        assert result.n_samples == 4
        assert cache.n_stale_locks_swept == 1

    def test_empty_lock_file_is_treated_as_live(self, tmp_path, monkeypatch):
        # An empty file is a holder between creating the lock and stamping
        # its PID: sweeping it would break mutual exclusion.
        monkeypatch.setattr("repro.utils.artifact_cache.fcntl", None)
        cache = ArtifactCache(tmp_path, lock_timeout_s=0.3)
        key = cache.key_for("dataset", seed=2)
        lock_path = cache.root / "dataset" / f"{key}.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.touch()
        with pytest.raises(SerializationError, match="timed out"):
            self._build(cache, key)
        assert cache.n_stale_locks_swept == 0
        assert lock_path.exists()

    def test_live_holder_lock_is_never_swept(self, tmp_path, monkeypatch):
        import os

        monkeypatch.setattr("repro.utils.artifact_cache.fcntl", None)
        cache = ArtifactCache(tmp_path, lock_timeout_s=0.3)
        key = cache.key_for("dataset", seed=3)
        lock_path = cache.root / "dataset" / f"{key}.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.write_text(str(os.getpid()), encoding="ascii")  # us: alive
        with pytest.raises(SerializationError, match="timed out"):
            self._build(cache, key)
        assert cache.n_stale_locks_swept == 0
        assert lock_path.exists()

    def test_spin_path_serialises_builders_and_releases(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.setattr("repro.utils.artifact_cache.fcntl", None)
        cache = ArtifactCache(tmp_path)
        key = cache.key_for("dataset", seed=4)
        build_calls = []
        results = {}
        barrier = threading.Barrier(3)

        def build() -> Dataset:
            build_calls.append(threading.get_ident())
            time.sleep(0.05)
            return self._dataset()

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = cache.load_or_build(
                "dataset", key, build,
                lambda ds, path: ds.save(path / "data"),
                lambda path: Dataset.load(path / "data"))

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(build_calls) == 1
        assert len(results) == 3
        # The spin lock file is removed on release (unlike flock's).
        assert not (cache.root / "dataset" / f"{key}.lock").exists()


class TestContextIntegration:
    @pytest.fixture()
    def cached_context(self, tmp_path):
        return ExperimentContext(scale=TINY_PROFILE, seed=77,
                                 cache=ArtifactCache(tmp_path / "cache"))

    def test_context_accepts_path_as_cache(self, tmp_path):
        context = ExperimentContext(scale=TINY_PROFILE, seed=77,
                                    cache=tmp_path / "cache")
        assert isinstance(context.cache, ArtifactCache)
        assert context.describe()["cache_root"] == str(tmp_path / "cache")

    def test_warm_context_matches_cold_context(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = ExperimentContext(scale=TINY_PROFILE, seed=77, cache=cache)
        cold_corpus = cold.corpus
        cold_target = cold.target_model

        warm = ExperimentContext(scale=TINY_PROFILE, seed=77, cache=cache)
        warm_corpus = warm.corpus
        warm_target = warm.target_model

        np.testing.assert_array_equal(warm_corpus.train.features,
                                      cold_corpus.train.features)
        np.testing.assert_array_equal(warm_corpus.test.labels,
                                      cold_corpus.test.labels)
        x = cold_corpus.test.features[:16]
        np.testing.assert_allclose(warm_target.predict_proba(x),
                                   cold_target.predict_proba(x), atol=1e-9)
        # Training history rides along with the cached model (Table IV reads
        # the final train accuracy from it on warm runs).
        assert warm_target.history.epochs_run == cold_target.history.epochs_run
        np.testing.assert_allclose(warm_target.history.train_accuracy,
                                   cold_target.history.train_accuracy)

    def test_warm_context_loads_greybox_adversarial(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = ExperimentContext(scale=TINY_PROFILE, seed=78, cache=cache)
        cold_advex = cold.greybox_adversarial(theta=0.1, gamma=0.02)
        warm = ExperimentContext(scale=TINY_PROFILE, seed=78, cache=cache)
        warm_advex = warm.greybox_adversarial(theta=0.1, gamma=0.02)
        np.testing.assert_array_equal(warm_advex.features, cold_advex.features)

    def test_different_seeds_do_not_share_artifacts(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        a = ExperimentContext(scale=TINY_PROFILE, seed=1, cache=cache)
        b = ExperimentContext(scale=TINY_PROFILE, seed=2, cache=cache)
        assert not np.array_equal(a.corpus.train.features,
                                  b.corpus.train.features)

    def test_binary_substitute_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = ExperimentContext(scale=TINY_PROFILE, seed=79, cache=cache)
        cold_model = cold.binary_substitute
        cold_pipeline = cold.binary_pipeline
        warm = ExperimentContext(scale=TINY_PROFILE, seed=79, cache=cache)
        warm_model = warm.binary_substitute
        assert warm.binary_pipeline.n_features == cold_pipeline.n_features
        x = np.clip(np.random.default_rng(0).random(
            (8, cold_model.network.input_dim)), 0, 1)
        np.testing.assert_allclose(warm_model.predict_proba(x),
                                   cold_model.predict_proba(x), atol=1e-9)
