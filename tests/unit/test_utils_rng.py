"""Tests for the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequence, as_rng, spawn_rngs


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(7).integers(1000) == as_rng(7).integers(1000)

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).integers(0, 2**31, size=8)
        draws_b = as_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_rng(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawnRngs:
    def test_returns_requested_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].integers(10**9) != children[1].integers(10**9)

    def test_spawn_is_deterministic(self):
        first = [rng.integers(10**9) for rng in spawn_rngs(3, 4)]
        second = [rng.integers(10**9) for rng in spawn_rngs(3, 4)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_allowed(self):
        assert spawn_rngs(0, 0) == []


class TestSeedSequence:
    def test_same_name_same_seed(self):
        seq = SeedSequence(master_seed=5)
        assert seq.seed_for("target") == seq.seed_for("target")

    def test_different_names_different_seeds(self):
        seq = SeedSequence(master_seed=5)
        assert seq.seed_for("target") != seq.seed_for("substitute")

    def test_different_master_seeds_differ(self):
        assert (SeedSequence(1).seed_for("x")
                != SeedSequence(2).seed_for("x"))

    def test_name_derivation_is_order_independent(self):
        seq_a = SeedSequence(master_seed=9)
        seq_a.seed_for("alpha")
        value_a = seq_a.seed_for("beta")
        seq_b = SeedSequence(master_seed=9)
        value_b = seq_b.seed_for("beta")
        assert value_a == value_b

    def test_rng_for_is_reproducible(self):
        seq = SeedSequence(master_seed=11)
        assert (seq.rng_for("component").integers(10**9)
                == SeedSequence(master_seed=11).rng_for("component").integers(10**9))

    def test_rngs_for_returns_mapping(self):
        seq = SeedSequence(master_seed=2)
        rngs = seq.rngs_for(["a", "b"])
        assert set(rngs) == {"a", "b"}

    def test_seeds_are_non_negative(self):
        seq = SeedSequence(master_seed=1234)
        assert all(seq.seed_for(f"name{i}") >= 0 for i in range(50))
