"""Unit tests of the instrumentation core (repro.obs) and its seams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    Instrumentation,
    ListSink,
    MetricsRegistry,
    NullSink,
    ObsEvent,
    Tracer,
    current,
    instrumented,
)
from repro.serving.batcher import MicroBatcher


# --------------------------------------------------------------------- #
# Events / sinks
# --------------------------------------------------------------------- #
class TestEvents:
    def test_event_round_trips_through_dict(self):
        event = ObsEvent(kind="counter", name="x", value=2.0,
                         span_id=3, parent_id=1, tags={"a": 1})
        assert ObsEvent.from_dict(event.as_dict()) == event

    def test_list_sink_buffers_in_order(self):
        sink = ListSink()
        for index in range(3):
            sink.emit(ObsEvent(kind="counter", name=f"n{index}", value=index))
        assert [event.name for event in sink.events] == ["n0", "n1", "n2"]
        assert len(sink) == 3

    def test_bounded_list_sink_drops_oldest(self):
        sink = ListSink(max_events=2)
        for index in range(5):
            sink.emit(ObsEvent(kind="counter", name=f"n{index}", value=index))
        assert [event.name for event in sink.events] == ["n3", "n4"]
        assert sink.n_dropped == 3

    def test_null_sink_swallows(self):
        NullSink().emit(ObsEvent(kind="gauge", name="x", value=1.0))


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.0)
        assert registry.counter("hits").value == 3.0
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1.0)

    def test_gauge_tracks_last_and_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 5.0

    def test_histogram_summary_stats(self):
        histogram = MetricsRegistry().histogram("ms")
        for value in (1.0, 3.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0
        assert histogram.mean == pytest.approx(3.0)

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_merge_is_associative_fold(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry, bump in ((left, 1.0), (right, 2.0)):
            registry.counter("c").inc(bump)
            registry.gauge("g").set(bump * 10)
            registry.histogram("h").observe(bump)
        left.merge_snapshot(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"]["c"] == 3.0
        assert snapshot["gauges"]["g"]["max"] == 20.0
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["sum"] == pytest.approx(3.0)

    def test_merge_into_empty_registry(self):
        source = MetricsRegistry()
        source.counter("c").inc(4.0)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.counter("c").value == 4.0


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_nested_spans_link_parent_ids(self):
        sink = ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.events
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0
        assert tracer.n_spans == 2

    def test_span_durations_use_injected_clock(self):
        ticks = iter([0.0, 1.5])
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics, clock=lambda: next(ticks))
        with tracer.span("work"):
            pass
        assert metrics.histogram("span.work").max == pytest.approx(1.5)

    def test_span_records_error_tag_and_reraises(self):
        sink = ListSink()
        tracer = Tracer(sink=sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert sink.events[0].tags.get("error") is True

    def test_stack_unwinds_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError
        assert tracer.active is None


# --------------------------------------------------------------------- #
# Instrumentation facade + ambient context
# --------------------------------------------------------------------- #
class TestInstrumentation:
    def test_counts_gauges_histograms_and_events(self):
        obs = Instrumentation(sink=ListSink())
        obs.count("c", 2.0)
        obs.gauge("g", 7.0)
        obs.observe("h", 0.5)
        snapshot = obs.snapshot()
        assert snapshot["metrics"]["counters"]["c"] == 2.0
        assert snapshot["metrics"]["gauges"]["g"]["max"] == 7.0
        assert snapshot["metrics"]["histograms"]["h"]["count"] == 1
        # Gauge sets are metrics-only (hot-path discipline): no gauge event.
        assert [event["kind"] for event in snapshot["events"]] == \
               ["counter", "histogram"]

    def test_base_tags_stamped_and_call_site_wins(self):
        obs = Instrumentation(sink=ListSink(), tags={"worker": 3, "a": 1})
        obs.count("c", a=2)
        event = obs.sink.events[0]
        assert event.tags == {"worker": 3, "a": 2}

    def test_events_carry_enclosing_span_id(self):
        obs = Instrumentation(sink=ListSink())
        with obs.span("outer"):
            obs.count("inside")
        counter_event = [event for event in obs.sink.events
                         if event.kind == "counter"][0]
        span_event = [event for event in obs.sink.events
                      if event.kind == "span"][0]
        assert counter_event.parent_id == span_event.span_id

    def test_ambient_slot_nests_and_restores(self):
        assert current() is None
        outer, inner = Instrumentation(), Instrumentation()
        with instrumented(outer):
            assert current() is outer
            with instrumented(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_merge_snapshot_folds_metrics_spans_and_events(self):
        worker = Instrumentation(sink=ListSink())
        with worker.span("flush"):
            worker.count("serve.requests", 32)
        dispatcher = Instrumentation(sink=ListSink())
        dispatcher.count("fleet.dispatches", 32)
        dispatcher.merge_snapshot(worker.snapshot())
        snapshot = dispatcher.snapshot()
        assert snapshot["metrics"]["counters"]["serve.requests"] == 32.0
        assert snapshot["metrics"]["counters"]["fleet.dispatches"] == 32.0
        assert snapshot["n_spans"] == 1
        assert len(snapshot["events"]) == 3  # own counter + 2 replayed

    def test_merge_snapshot_tolerates_none(self):
        obs = Instrumentation()
        obs.merge_snapshot(None)
        obs.merge_snapshot({})
        assert obs.snapshot()["metrics"]["counters"] == {}


# --------------------------------------------------------------------- #
# Instrumented seams
# --------------------------------------------------------------------- #
class TestInstrumentedSeams:
    def test_batcher_queue_depth_and_batch_size(self):
        obs = Instrumentation()
        batcher = MicroBatcher(flush_fn=lambda items: list(items),
                               max_batch_size=3, instrumentation=obs)
        for item in range(5):
            batcher.submit(item)
        batcher.flush()
        snapshot = obs.snapshot()["metrics"]
        assert snapshot["gauges"]["batcher.queue_depth"]["max"] == 3.0
        histogram = snapshot["histograms"]["batcher.batch_size"]
        assert histogram["count"] == 2
        assert histogram["max"] == 3.0

    def test_uninstrumented_batcher_untouched(self):
        batcher = MicroBatcher(flush_fn=lambda items: list(items),
                               max_batch_size=2)
        assert batcher.submit(1) == []
        assert batcher.submit(2) == [1, 2]

    def test_artifact_cache_counts_hits_misses_and_build_time(self, tmp_path):
        from repro.utils.artifact_cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        obs = Instrumentation()

        def build():
            return {"array": np.arange(4.0)}

        def save(artifact, path):
            np.save(path / "a.npy", artifact["array"])

        def load(path):
            return {"array": np.load(path / "a.npy")}

        with instrumented(obs):
            cache.load_or_build("corpus", "k", build=build, save=save, load=load)
            cache.load_or_build("corpus", "k", build=build, save=save, load=load)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["cache.misses"] == 1.0
        assert counters["cache.hits"] == 1.0
        histograms = obs.snapshot()["metrics"]["histograms"]
        assert histograms["cache.build_seconds"]["count"] == 1

    def test_jsma_counters_and_identical_output(self, small_mlp):
        from repro.attacks.constraints import PerturbationConstraints
        from repro.attacks.jsma import JsmaAttack

        rng = np.random.default_rng(5)
        features = (rng.random((6, 12)) < 0.3).astype(np.float64)
        attack = JsmaAttack(small_mlp, PerturbationConstraints(theta=1.0,
                                                               gamma=0.25))
        plain = attack.run(features)
        obs = Instrumentation()
        with instrumented(obs):
            observed = attack.run(features)
        np.testing.assert_array_equal(plain.adversarial, observed.adversarial)
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters["jsma.samples"] == 6.0
        assert counters["jsma.steps"] >= 1.0
        assert counters["jsma.features_flipped"] >= 1.0
        histograms = obs.snapshot()["metrics"]["histograms"]
        assert histograms["span.attack.jsma"]["count"] == 1
