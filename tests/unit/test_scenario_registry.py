"""Registry completeness and parameter-schema tests for repro.scenarios."""

import importlib
import inspect
import pkgutil

import pytest

import repro.attacks
import repro.defenses
from repro.attacks.base import Attack
from repro.defenses.base import Defense
from repro.exceptions import ConfigurationError
from repro.scenarios import ATTACKS, DEFENSES, Param, build_defense


def _attack_classes():
    classes = set()
    for module_info in pkgutil.iter_modules(repro.attacks.__path__):
        module = importlib.import_module(f"repro.attacks.{module_info.name}")
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if (issubclass(cls, Attack) and cls is not Attack
                    and cls.__module__.startswith("repro.attacks")
                    and "run" in cls.__dict__):
                classes.add(cls)
    return classes


def _defense_classes():
    classes = set()
    for module_info in pkgutil.iter_modules(repro.defenses.__path__):
        module = importlib.import_module(f"repro.defenses.{module_info.name}")
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if (issubclass(cls, Defense) and cls is not Defense
                    and cls.__module__.startswith("repro.defenses")
                    and "fit" in cls.__dict__):
                classes.add(cls)
    return classes


class TestRegistryCompleteness:
    def test_every_concrete_attack_is_registered_exactly_once(self):
        registered = {entry.cls for entry in ATTACKS.entries()}
        for cls in _attack_classes():
            assert cls in registered, f"{cls.__name__} is not registered"
        # exactly once: entry_for_class finds one entry and ids are unique keys
        for cls in registered:
            matches = [e for e in ATTACKS.entries() if e.cls is cls]
            assert len(matches) == 1

    def test_live_greybox_attack_is_registered(self):
        from repro.attacks.live_greybox import LiveGreyBoxAttack

        entry = ATTACKS.get("live_greybox")
        assert entry.cls is LiveGreyBoxAttack
        assert entry.kind == "live"

    def test_every_concrete_defense_is_registered_exactly_once(self):
        registered = {entry.cls for entry in DEFENSES.entries()}
        for cls in _defense_classes():
            assert cls in registered, f"{cls.__name__} is not registered"
        for cls in registered:
            matches = [e for e in DEFENSES.entries() if e.cls is cls]
            assert len(matches) == 1

    def test_ids_and_aliases_do_not_collide(self):
        for registry in (ATTACKS, DEFENSES):
            names = []
            for entry in registry.entries():
                names.append(entry.entry_id)
                names.extend(entry.aliases)
            assert len(names) == len(set(names))

    def test_aliases_resolve_to_canonical_entries(self):
        assert ATTACKS.get("random_noise").entry_id == "random_addition"
        assert DEFENSES.get("squeeze").entry_id == "feature_squeezing"
        assert DEFENSES.get("no_defense").entry_id == "none"
        assert DEFENSES.get("defensive_distillation").entry_id == "distillation"
        assert DEFENSES.get("pca").entry_id == "dim_reduction"

    def test_unknown_ids_raise(self):
        with pytest.raises(ConfigurationError):
            ATTACKS.get("gradient_descent_9000")
        with pytest.raises(ConfigurationError):
            DEFENSES.get("prayer")

    def test_duplicate_registration_rejected(self):
        from repro.scenarios.registry import ComponentRegistry

        registry = ComponentRegistry("thing")
        registry.register("a", int, factory=lambda *a: None)
        with pytest.raises(ConfigurationError):
            registry.register("a", float, factory=lambda *a: None)
        with pytest.raises(ConfigurationError):
            registry.register("b", int, factory=lambda *a: None)  # class reused
        with pytest.raises(ConfigurationError):
            registry.register("c", str, aliases=("a",), factory=lambda *a: None)


class TestAttackNameStamping:
    def test_registry_id_is_stamped_on_every_attack_class(self):
        for entry in ATTACKS.entries():
            assert entry.cls.name == entry.entry_id

    def test_no_registered_attack_reports_the_placeholder_name(self):
        for entry in ATTACKS.entries():
            assert entry.cls.name != "attack"

    def test_attack_results_carry_the_registry_id(self, small_mlp):
        import numpy as np

        from repro.attacks.constraints import PerturbationConstraints
        from repro.attacks.fgsm import FgsmAttack
        from repro.attacks.jsma import JsmaAttack
        from repro.attacks.random_noise import RandomAdditionAttack

        features = np.random.default_rng(0).uniform(0.0, 0.4, size=(6, 12))
        constraints = PerturbationConstraints(theta=0.1, gamma=0.2)
        for cls, expected in ((JsmaAttack, "jsma"), (FgsmAttack, "fgsm"),
                              (RandomAdditionAttack, "random_addition")):
            result = cls(small_mlp, constraints=constraints).run(features)
            assert result.attack_name == expected


class TestParamSchemas:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            ATTACKS.get("jsma").resolve_params({"warp_factor": 9})

    def test_type_mismatch_rejected(self):
        entry = ATTACKS.get("jsma")
        with pytest.raises(ConfigurationError):
            entry.resolve_params({"early_stop": "yes"})
        with pytest.raises(ConfigurationError):
            entry.resolve_params({"features_per_step": 1.5})

    def test_choices_enforced(self):
        with pytest.raises(ConfigurationError):
            DEFENSES.get("feature_squeezing").resolve_params({"squeezer": "jpeg"})
        with pytest.raises(ConfigurationError):
            ATTACKS.get("jsma").resolve_params({"target_class": 3})

    def test_defaults_fill_and_overrides_apply(self):
        resolved = ATTACKS.get("jsma").resolve_params({"early_stop": False})
        assert resolved["early_stop"] is False
        assert resolved["use_saliency_map"] is True
        assert resolved["features_per_step"] == 1

    def test_optional_float_accepts_none_and_int(self):
        entry = ATTACKS.get("fgsm")
        assert entry.resolve_params({"epsilon": None})["epsilon"] is None
        assert entry.resolve_params({"epsilon": 1})["epsilon"] == 1.0

    def test_every_declared_default_validates_against_its_schema(self):
        for registry in (ATTACKS, DEFENSES):
            for entry in registry.entries():
                resolved = entry.resolve_params({})
                for param in entry.params:
                    if resolved[param.name] is not None:
                        param.validate(resolved[param.name])

    def test_param_kind_vocabulary_is_closed(self):
        with pytest.raises(ConfigurationError):
            Param("x", "complex", 1j)


class TestBuildDefense:
    def test_fits_are_memoised_per_context(self, tiny_context):
        first = build_defense("none", tiny_context)
        second = build_defense("none", tiny_context)
        assert first is second

    def test_different_params_fit_different_detectors(self, tiny_context):
        default = build_defense("feature_squeezing", tiny_context)
        loose = build_defense("feature_squeezing", tiny_context,
                              {"false_positive_budget": 0.2})
        assert default is not loose

    def test_model_override_bypasses_the_memo(self, tiny_context, tiny_target):
        memoised = build_defense("none", tiny_context)
        overridden = build_defense("none", tiny_context, model=tiny_target)
        assert overridden is not memoised

    def test_ensemble_reuses_member_fits(self, tiny_context):
        member = build_defense("feature_squeezing", tiny_context)
        ensemble = build_defense("ensemble", tiny_context,
                                 {"members": ("none", "feature_squeezing")})
        assert member in ensemble.members

    def test_nested_ensembles_rejected(self, tiny_context):
        with pytest.raises(ConfigurationError, match="ensemble"):
            build_defense("ensemble", tiny_context, {"members": ("ensemble",)})
