"""Tests for SourceSample mutation and the simulated sandbox."""

import numpy as np
import pytest

from repro.apilog.behavior_profiles import default_profile_library
from repro.apilog.log_format import parse_line
from repro.apilog.sandbox import SUPPORTED_OS_VERSIONS, Sandbox
from repro.apilog.source_sample import SourceSample
from repro.config import CLASS_MALWARE
from repro.exceptions import ConfigurationError, SandboxError


@pytest.fixture()
def malware_sample():
    profile = default_profile_library().by_name("malware_trojan_injector")
    return SourceSample.from_profile(profile, "unit-mal-001", random_state=3)


@pytest.fixture()
def clean_sample():
    profile = default_profile_library().by_name("clean_gui_utility")
    return SourceSample.from_profile(profile, "unit-clean-001", random_state=4)


class TestSourceSample:
    def test_from_profile_sets_label_and_family(self, malware_sample):
        assert malware_sample.label == CLASS_MALWARE
        assert malware_sample.family == "malware_trojan_injector"

    def test_from_profile_is_seeded(self):
        profile = default_profile_library().by_name("malware_ransomware")
        a = SourceSample.from_profile(profile, "x", random_state=9)
        b = SourceSample.from_profile(profile, "x", random_state=9)
        assert a.api_calls == b.api_calls

    def test_sample_is_never_empty(self):
        profile = default_profile_library().by_name("clean_console_tool")
        for seed in range(10):
            sample = SourceSample.from_profile(profile, f"s{seed}", random_state=seed)
            assert sample.total_calls() > 0

    def test_api_names_are_lowercased(self):
        sample = SourceSample(sample_id="s", label=1, family="f",
                              api_calls={"WriteFile": 3})
        assert sample.api_calls == {"writefile": 3}

    def test_zero_counts_are_dropped(self):
        sample = SourceSample(sample_id="s", label=0, family="f",
                              api_calls={"writefile": 0, "readfile": 2})
        assert "writefile" not in sample.api_calls

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceSample(sample_id="s", label=0, family="f", api_calls={"writefile": -1})

    def test_invalid_label_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceSample(sample_id="s", label=2, family="f")


class TestSourceMutation:
    def test_add_api_call_returns_new_object(self, malware_sample):
        mutated = malware_sample.add_api_call("destroyicon", times=2)
        assert mutated is not malware_sample
        assert malware_sample.injected_calls == {}
        assert mutated.injected_calls == {"destroyicon": 2}

    def test_add_api_call_accumulates(self, malware_sample):
        mutated = malware_sample.add_api_call("destroyicon").add_api_call("destroyicon", 3)
        assert mutated.injected_calls["destroyicon"] == 4

    def test_add_api_calls_mapping(self, malware_sample):
        mutated = malware_sample.add_api_calls({"destroyicon": 1, "waitmessage": 2})
        assert mutated.injected_calls == {"destroyicon": 1, "waitmessage": 2}

    def test_mutation_preserves_functionality(self, malware_sample):
        mutated = malware_sample.add_api_call("destroyicon", 5)
        assert mutated.preserves_functionality_of(malware_sample)

    def test_removed_behaviour_detected(self, malware_sample):
        api, count = next(iter(malware_sample.api_calls.items()))
        reduced = dict(malware_sample.api_calls)
        del reduced[api]
        stripped = SourceSample(sample_id="s", label=1, family="f", api_calls=reduced)
        assert not stripped.preserves_functionality_of(malware_sample)

    def test_combined_calls_merges_injections(self, malware_sample):
        mutated = malware_sample.add_api_call("destroyicon", 2)
        combined = mutated.combined_calls()
        assert combined["destroyicon"] == 2
        for api, count in malware_sample.api_calls.items():
            assert combined[api] >= count

    def test_uses_api_covers_injections(self, malware_sample):
        assert not malware_sample.uses_api("destroyicon")
        assert malware_sample.add_api_call("destroyicon").uses_api("destroyicon")

    def test_invalid_times_rejected(self, malware_sample):
        with pytest.raises(ConfigurationError):
            malware_sample.add_api_call("destroyicon", times=0)

    def test_describe_mentions_family(self, malware_sample):
        assert "malware_trojan_injector" in malware_sample.describe()


class TestSandbox:
    def test_rejects_unknown_os(self):
        with pytest.raises(SandboxError):
            Sandbox(os_version="win95")

    @pytest.mark.parametrize("os_version", SUPPORTED_OS_VERSIONS)
    def test_execute_produces_nonempty_log(self, os_version, malware_sample):
        run = Sandbox(os_version=os_version, random_state=0).execute(malware_sample)
        assert run.total_calls > 0
        assert run.os_version == os_version

    def test_log_lines_parse_back(self, malware_sample):
        text = Sandbox(os_version="win7", random_state=0,
                       record_args=True).execute_to_text(malware_sample)
        lines = text.splitlines()
        assert lines
        for line in lines[:50]:
            parse_line(line)

    def test_log_contains_sample_apis(self, malware_sample):
        run = Sandbox(os_version="win7", random_state=0).execute(malware_sample)
        logged = set(run.log.api_counts())
        sample_apis = set(malware_sample.api_calls)
        assert len(logged & sample_apis) >= len(sample_apis) * 0.8

    def test_log_contains_os_preamble(self, clean_sample):
        run = Sandbox(os_version="win7", random_state=0).execute(clean_sample)
        assert "getstartupinfow" in run.log.api_counts()

    def test_injected_api_appears_in_log(self, malware_sample):
        mutated = malware_sample.add_api_call("destroyicon", 4)
        counts = Sandbox(os_version="win7", random_state=1).execute_counts(mutated)
        assert counts.get("destroyicon", 0) >= 4

    def test_execute_counts_matches_log_distribution(self, malware_sample):
        # The fast path and the full log path must produce counts with the
        # same support (the same APIs), since they share the sampling logic.
        sandbox = Sandbox(os_version="win10", random_state=2)
        fast = sandbox.execute_counts(malware_sample)
        log_counts = Sandbox(os_version="win10", random_state=2).execute(malware_sample).log.api_counts()
        shared = set(fast) & set(log_counts)
        assert len(shared) >= 0.7 * min(len(fast), len(log_counts))

    def test_label_propagates_to_log(self, malware_sample):
        run = Sandbox(os_version="win8", random_state=0).execute(malware_sample)
        assert run.log.label == CLASS_MALWARE

    def test_execution_is_seeded(self, malware_sample):
        a = Sandbox(os_version="win7", random_state=7).execute_counts(malware_sample)
        b = Sandbox(os_version="win7", random_state=7).execute_counts(malware_sample)
        assert a == b
