"""Tests for the fused single-backward binary Jacobian.

The binary fast path in :meth:`NeuralNetwork.class_gradients` relies on the
softmax identity ``dF_0/dx == -dF_1/dx``; these tests pin (a) numerical
agreement with the general per-class loop, (b) the one-backward-pass
regression guarantee, and (c) float32/float64 engine agreement.
"""

import numpy as np
import pytest

from repro.nn.engine import use_dtype
from repro.nn.layers import Layer
from repro.nn.network import NeuralNetwork


class BackwardCounter(Layer):
    """Identity layer that counts backward passes through the network."""

    def __init__(self) -> None:
        super().__init__()
        self.backward_calls = 0
        self.forward_calls = 0

    def forward(self, inputs, training=False):
        self.forward_calls += 1
        return inputs

    def backward(self, grad_output):
        self.backward_calls += 1
        return grad_output

    def output_dim(self, input_dim):
        return input_dim


def random_batch(n_features: int, n_samples: int = 5, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n_samples, n_features))


class TestFusedMatchesLoop:
    @pytest.mark.parametrize("sizes,seed", [
        ([7, 5, 2], 0),
        ([12, 16, 8, 2], 1),
        ([20, 30, 25, 10, 2], 2),
        ([3, 4, 2], 3),
    ])
    def test_fused_matches_per_class_loop(self, sizes, seed):
        network = NeuralNetwork.mlp(sizes, random_state=seed)
        x = random_batch(sizes[0], seed=seed)
        fused = network.class_gradients(x)
        loop = network.class_gradients(x, fused=False)
        np.testing.assert_allclose(fused, loop, atol=1e-6)

    def test_fused_matches_loop_under_temperature(self):
        network = NeuralNetwork.mlp([9, 6, 2], random_state=4, temperature=50.0)
        x = random_batch(9, seed=4)
        np.testing.assert_allclose(network.class_gradients(x),
                                   network.class_gradients(x, fused=False),
                                   atol=1e-6)

    def test_fused_matches_loop_tanh_activation(self):
        network = NeuralNetwork.mlp([8, 10, 2], activation="tanh", random_state=5)
        x = random_batch(8, seed=5)
        np.testing.assert_allclose(network.class_gradients(x),
                                   network.class_gradients(x, fused=False),
                                   atol=1e-6)

    def test_multiclass_ignores_fused_request(self):
        network = NeuralNetwork.mlp([6, 8, 4], random_state=6)
        x = random_batch(6, seed=6)
        jacobian = network.class_gradients(x, fused=True)
        assert jacobian.shape == (x.shape[0], 4, 6)
        np.testing.assert_allclose(jacobian,
                                   network.class_gradients(x, fused=False),
                                   atol=1e-6)

    def test_binary_rows_cancel_exactly(self):
        network = NeuralNetwork.mlp([10, 7, 2], random_state=7)
        jacobian = network.class_gradients(random_batch(10, seed=7))
        np.testing.assert_array_equal(jacobian[:, 0, :], -jacobian[:, 1, :])

    def test_return_probs_matches_predict_proba(self):
        network = NeuralNetwork.mlp([11, 6, 2], random_state=8)
        x = random_batch(11, seed=8)
        _, probs = network.class_gradients(x, return_probs=True)
        np.testing.assert_allclose(probs, network.predict_proba(x), atol=1e-12)


class TestBackwardPassCount:
    def _counted_network(self, n_classes: int) -> tuple:
        counter = BackwardCounter()
        base = NeuralNetwork.mlp([6, 5, n_classes], random_state=9)
        network = NeuralNetwork([counter] + list(base.layers),
                                n_classes=n_classes)
        return network, counter

    def test_binary_jacobian_uses_exactly_one_backward_pass(self):
        network, counter = self._counted_network(n_classes=2)
        network.class_gradients(random_batch(6, seed=9))
        assert counter.forward_calls == 1
        assert counter.backward_calls == 1

    def test_per_class_loop_uses_one_backward_per_class(self):
        network, counter = self._counted_network(n_classes=2)
        network.class_gradients(random_batch(6, seed=9), fused=False)
        assert counter.backward_calls == 2

    def test_multiclass_jacobian_uses_one_backward_per_class(self):
        network, counter = self._counted_network(n_classes=3)
        network.class_gradients(random_batch(6, seed=10))
        assert counter.backward_calls == 3


class TestEngineDtypeAgreement:
    def test_predictions_agree_across_dtypes(self):
        x = random_batch(12, n_samples=64, seed=11)
        network64 = NeuralNetwork.mlp([12, 16, 8, 2], random_state=12)
        with use_dtype("float32"):
            network32 = NeuralNetwork.mlp([12, 16, 8, 2], random_state=12)
        probs64 = network64.predict_proba(x)
        probs32 = network32.predict_proba(x.astype(np.float32))
        assert probs32.dtype == np.float32
        np.testing.assert_allclose(probs32, probs64, atol=1e-5)
        np.testing.assert_array_equal(network32.predict(x), network64.predict(x))

    def test_jacobians_agree_across_dtypes(self):
        x = random_batch(10, seed=13)
        network64 = NeuralNetwork.mlp([10, 8, 2], random_state=13)
        with use_dtype("float32"):
            network32 = NeuralNetwork.mlp([10, 8, 2], random_state=13)
        np.testing.assert_allclose(network32.class_gradients(x),
                                   network64.class_gradients(x), atol=1e-5)
