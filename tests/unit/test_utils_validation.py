"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.validation import (
    check_fraction,
    check_in_unit_interval,
    check_labels,
    check_matrix,
    check_positive_int,
    check_probability_matrix,
)


class TestCheckPositiveInt:
    def test_accepts_valid_int(self):
        assert check_positive_int(3, "n") == 3

    def test_rejects_zero_with_default_minimum(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "n")

    def test_respects_custom_minimum(self):
        assert check_positive_int(0, "n", minimum=0) == 0

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "n")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_fraction(value, "f") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction(value, "f")

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "f", inclusive_low=False)
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "f", inclusive_high=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_fraction("half", "f")


class TestCheckMatrix:
    def test_promotes_1d_to_single_row(self):
        out = check_matrix(np.zeros(4))
        assert out.shape == (1, 4)

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((0, 4)))

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((3, 4)), n_features=5)

    def test_rejects_nan(self):
        bad = np.zeros((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ShapeError):
            check_matrix(bad)

    def test_rejects_inf(self):
        bad = np.zeros((2, 2))
        bad[1, 1] = np.inf
        with pytest.raises(ShapeError):
            check_matrix(bad)

    def test_returns_float64(self):
        assert check_matrix(np.zeros((2, 2), dtype=np.float32)).dtype == np.float64


class TestCheckLabels:
    def test_accepts_binary_labels(self):
        out = check_labels(np.array([0, 1, 1, 0]))
        assert out.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            check_labels(np.zeros((2, 2)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            check_labels(np.array([0, 2]))

    def test_rejects_non_integer_values(self):
        with pytest.raises(ShapeError):
            check_labels(np.array([0.5, 1.0]))

    def test_accepts_integer_valued_floats(self):
        out = check_labels(np.array([0.0, 1.0]))
        assert list(out) == [0, 1]

    def test_rejects_sample_count_mismatch(self):
        with pytest.raises(ShapeError):
            check_labels(np.array([0, 1]), n_samples=3)


class TestCheckUnitInterval:
    def test_clips_tiny_numerical_noise(self):
        out = check_in_unit_interval(np.array([[0.0, 1.0 + 1e-12]]))
        assert out.max() <= 1.0

    def test_rejects_clear_violations(self):
        with pytest.raises(ShapeError):
            check_in_unit_interval(np.array([[1.5]]))


class TestCheckProbabilityMatrix:
    def test_accepts_valid_rows(self):
        check_probability_matrix(np.array([[0.3, 0.7], [0.5, 0.5]]))

    def test_rejects_rows_not_summing_to_one(self):
        with pytest.raises(ShapeError):
            check_probability_matrix(np.array([[0.3, 0.3]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ShapeError):
            check_probability_matrix(np.array([[-0.1, 1.1]]))

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_probability_matrix(np.array([0.5, 0.5]))
