"""Tests for the bundle serialization helpers."""

import json

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.utils.serialization import load_bundle, save_bundle


class TestSaveLoadBundle:
    def test_round_trip_preserves_meta_and_arrays(self, tmp_path):
        meta = {"name": "model", "layers": [3, 2], "lr": 0.001}
        arrays = {"w": np.arange(6, dtype=np.float64).reshape(3, 2)}
        save_bundle(tmp_path / "bundle", meta, arrays)
        loaded_meta, loaded_arrays = load_bundle(tmp_path / "bundle")
        assert loaded_meta["name"] == "model"
        assert loaded_meta["layers"] == [3, 2]
        np.testing.assert_array_equal(loaded_arrays["w"], arrays["w"])

    def test_numpy_scalars_in_meta_become_json_types(self, tmp_path):
        meta = {"count": np.int64(5), "rate": np.float64(0.25),
                "values": np.array([1.0, 2.0])}
        save_bundle(tmp_path / "b", meta, {})
        loaded_meta, _ = load_bundle(tmp_path / "b")
        assert loaded_meta["count"] == 5
        assert loaded_meta["rate"] == 0.25
        assert loaded_meta["values"] == [1.0, 2.0]

    def test_meta_file_is_human_readable_json(self, tmp_path):
        save_bundle(tmp_path / "b", {"a": 1}, {})
        with open(tmp_path / "b" / "meta.json", encoding="utf-8") as handle:
            assert json.load(handle) == {"a": 1}

    def test_overwrites_existing_bundle(self, tmp_path):
        save_bundle(tmp_path / "b", {"v": 1}, {"x": np.zeros(2)})
        save_bundle(tmp_path / "b", {"v": 2}, {"x": np.ones(2)})
        meta, arrays = load_bundle(tmp_path / "b")
        assert meta["v"] == 2
        assert arrays["x"].sum() == 2.0

    def test_nested_meta_round_trips(self, tmp_path):
        meta = {"nested": {"a": [1, 2, {"b": np.float64(3.5)}]}}
        save_bundle(tmp_path / "b", meta, {})
        loaded, _ = load_bundle(tmp_path / "b")
        assert loaded["nested"]["a"][2]["b"] == 3.5


class TestLoadErrors:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_bundle(tmp_path / "does_not_exist")

    def test_partial_bundle_raises(self, tmp_path):
        directory = tmp_path / "partial"
        directory.mkdir()
        (directory / "meta.json").write_text("{}", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_bundle(directory)

    def test_corrupt_meta_raises(self, tmp_path):
        save_bundle(tmp_path / "b", {"ok": True}, {"x": np.zeros(1)})
        (tmp_path / "b" / "meta.json").write_text("not-json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_bundle(tmp_path / "b")
