"""Tests for feature extraction, transformation and the pipeline."""

import numpy as np
import pytest

from repro.apilog.api_catalog import build_catalog, default_catalog
from repro.apilog.log_format import ApiLog, LogRecord
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.features.extraction import CountExtractor
from repro.features.pipeline import FeaturePipeline
from repro.features.transformation import (
    BinaryTransformer,
    CountTransformer,
    IdentityTransformer,
    transformer_from_config,
)


class TestCountExtractor:
    def test_dimension_matches_catalog(self):
        assert CountExtractor().n_features == 491

    def test_extract_from_mapping(self):
        extractor = CountExtractor()
        vector = extractor.extract({"writefile": 3, "winexec": 1})
        assert vector.sum() == 4
        assert vector[extractor.catalog.index_of("writefile")] == 3

    def test_extract_from_log(self):
        extractor = CountExtractor()
        log = ApiLog(sample_id="s", os_version="win7")
        log.append(LogRecord("WriteFile", 0x1, (), 1))
        log.append(LogRecord("WriteFile", 0x2, (), 1))
        vector = extractor.extract(log)
        assert vector[extractor.catalog.index_of("writefile")] == 2

    def test_unmonitored_apis_are_ignored(self):
        extractor = CountExtractor()
        vector = extractor.extract({"totally_unknown_api": 50, "writefile": 1})
        assert vector.sum() == 1

    def test_extract_is_case_insensitive(self):
        extractor = CountExtractor()
        a = extractor.extract({"WriteFile": 2})
        b = extractor.extract({"writefile": 2})
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ShapeError):
            CountExtractor().extract({"writefile": -1})

    def test_extract_batch_stacks_rows(self):
        extractor = CountExtractor()
        batch = extractor.extract_batch([{"writefile": 1}, {"winexec": 2}])
        assert batch.shape == (2, 491)

    def test_extract_batch_empty_returns_zero_row_matrix(self):
        # The serving path sees empty micro-batches; they must not raise.
        batch = CountExtractor().extract_batch([])
        assert batch.shape == (0, 491)

    def test_empty_log_extracts_to_zero_vector(self):
        vector = CountExtractor().extract(ApiLog(sample_id="e", os_version="win7"))
        assert vector.shape == (491,)
        assert vector.sum() == 0

    def test_unknown_api_only_log_extracts_to_zero_vector(self):
        vector = CountExtractor().extract({"not_a_monitored_api": 9,
                                           "another_unknown": 3})
        assert vector.sum() == 0

    def test_monitored_fraction(self):
        extractor = CountExtractor()
        assert extractor.monitored_fraction({"writefile": 1, "unknown": 1}) == 0.5
        assert extractor.monitored_fraction({}) == 0.0

    def test_invalid_source_type_rejected(self):
        with pytest.raises(ShapeError):
            CountExtractor().extract([1, 2, 3])


class TestCountTransformer:
    def test_output_in_unit_interval(self):
        counts = np.random.default_rng(0).integers(0, 500, size=(30, 10)).astype(float)
        features = CountTransformer().fit_transform(counts)
        assert features.min() >= 0.0
        assert features.max() <= 1.0

    def test_monotonic_in_counts(self):
        transformer = CountTransformer()
        train = np.array([[0.0, 100.0], [50.0, 10.0]])
        transformer.fit(train)
        low = transformer.transform(np.array([[1.0, 1.0]]))
        high = transformer.transform(np.array([[5.0, 5.0]]))
        assert np.all(high >= low)

    def test_zero_counts_map_to_zero(self):
        transformer = CountTransformer().fit(np.ones((3, 4)))
        np.testing.assert_array_equal(transformer.transform(np.zeros((2, 4))),
                                      np.zeros((2, 4)))

    def test_counts_above_training_max_are_clipped(self):
        transformer = CountTransformer(min_scale_count=10).fit(np.full((2, 3), 20.0))
        out = transformer.transform(np.full((1, 3), 1e6))
        np.testing.assert_array_equal(out, np.ones((1, 3)))

    def test_min_scale_floor_applies_to_rare_features(self):
        transformer = CountTransformer(min_scale_count=50).fit(np.full((2, 2), 3.0))
        out = transformer.transform(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(out, 0.1)

    def test_linear_scaling_definition(self):
        transformer = CountTransformer(min_scale_count=1.0, scaling="linear")
        transformer.fit(np.array([[10.0, 20.0]]))
        out = transformer.transform(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.25]])

    def test_log_scaling_definition(self):
        transformer = CountTransformer(min_scale_count=1.0, scaling="log")
        transformer.fit(np.array([[10.0]]))
        out = transformer.transform(np.array([[10.0]]))
        np.testing.assert_allclose(out, [[1.0]])

    def test_inverse_count_round_trip(self):
        transformer = CountTransformer(min_scale_count=10.0)
        transformer.fit(np.array([[40.0, 5.0]]))
        counts = np.array([[8.0, 3.0]])
        features = transformer.transform(counts)
        np.testing.assert_allclose(transformer.inverse_count(features), counts, rtol=1e-9)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CountTransformer().transform(np.ones((1, 3)))

    def test_negative_counts_rejected(self):
        with pytest.raises(ShapeError):
            CountTransformer().fit(np.array([[-1.0]]))

    def test_invalid_scaling_rejected(self):
        with pytest.raises(ConfigurationError):
            CountTransformer(scaling="sqrt")

    def test_is_fitted_flag(self):
        transformer = CountTransformer()
        assert not transformer.is_fitted
        transformer.fit(np.ones((2, 2)))
        assert transformer.is_fitted


class TestBinaryTransformer:
    def test_output_is_zero_one(self):
        out = BinaryTransformer().fit_transform(np.array([[0.0, 1.0, 7.0]]))
        np.testing.assert_array_equal(out, [[0.0, 1.0, 1.0]])

    def test_threshold_respected(self):
        out = BinaryTransformer(threshold=2.0).transform(np.array([[1.0, 3.0]]))
        np.testing.assert_array_equal(out, [[0.0, 1.0]])

    def test_negative_counts_rejected(self):
        with pytest.raises(ShapeError):
            BinaryTransformer().transform(np.array([[-0.5]]))


class TestTransformerConfig:
    @pytest.mark.parametrize("transformer", [
        CountTransformer(min_scale_count=30, scaling="log"),
        BinaryTransformer(threshold=1.5),
        IdentityTransformer(),
    ])
    def test_config_round_trip(self, transformer):
        rebuilt = transformer_from_config(transformer.get_config())
        assert type(rebuilt) is type(transformer)
        assert rebuilt.get_config() == transformer.get_config()

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            transformer_from_config({"type": "MysteryTransformer"})


class TestFeaturePipeline:
    def _sources(self):
        return [{"writefile": 5, "winexec": 1},
                {"writeprocessmemory": 3, "writefile": 1},
                {"waitmessage": 2}]

    def test_fit_transform_shape(self):
        pipeline = FeaturePipeline()
        features = pipeline.fit_transform(self._sources())
        assert features.shape == (3, 491)
        assert pipeline.is_fitted

    def test_transform_one_matches_batch(self):
        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        batch = pipeline.transform(self._sources())
        single = pipeline.transform_one(self._sources()[1])
        np.testing.assert_allclose(single, batch[1])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            FeaturePipeline().transform(self._sources())

    def test_save_load_round_trip(self, tmp_path):
        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        expected = pipeline.transform(self._sources())
        pipeline.save(tmp_path / "pipeline")
        restored = FeaturePipeline.load(tmp_path / "pipeline")
        np.testing.assert_allclose(restored.transform(self._sources()), expected)

    def test_save_load_preserves_catalog(self, tmp_path):
        catalog = build_catalog(n_features=64)
        pipeline = FeaturePipeline(catalog=catalog, transformer=BinaryTransformer())
        pipeline.fit([{"writefile": 1}])
        pipeline.save(tmp_path / "p")
        restored = FeaturePipeline.load(tmp_path / "p")
        assert restored.n_features == 64
        assert isinstance(restored.transformer, BinaryTransformer)

    def test_binary_pipeline_features_are_binary(self):
        pipeline = FeaturePipeline(transformer=BinaryTransformer())
        features = pipeline.fit_transform(self._sources())
        assert set(np.unique(features)) <= {0.0, 1.0}

    def test_empty_log_transforms_to_zero_vector(self):
        # Regression for the serving path: an empty execution trace must
        # yield a well-formed all-zero feature row, not an error.
        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        row = pipeline.transform_one(ApiLog(sample_id="empty", os_version="win7"))
        assert row.shape == (491,)
        np.testing.assert_array_equal(row, np.zeros(491))

    def test_unknown_api_log_transforms_to_zero_vector(self):
        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        row = pipeline.transform_one({"completely_unknown_api": 40})
        np.testing.assert_array_equal(row, np.zeros(491))

    def test_empty_source_batch_transforms_to_zero_row_matrix(self):
        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        assert pipeline.transform([]).shape == (0, 491)
        assert pipeline.transform_counts(np.zeros((0, 491))).shape == (0, 491)


class TestPipelineBundleRoundTrip:
    """save_bundle/load_bundle round trips for both pipeline flavours."""

    def _sources(self):
        return [{"writefile": 5, "winexec": 1},
                {"writeprocessmemory": 3, "writefile": 1},
                {"waitmessage": 2, "writefile": 9}]

    def test_count_pipeline_bundle_contents(self, tmp_path):
        from repro.utils.serialization import load_bundle

        pipeline = FeaturePipeline()
        pipeline.fit(self._sources())
        pipeline.save(tmp_path / "bundle")
        meta, arrays = load_bundle(tmp_path / "bundle")
        assert meta["transformer"]["type"] == "CountTransformer"
        assert len(meta["catalog"]) == 491
        np.testing.assert_allclose(arrays["scales"],
                                   pipeline.transformer.scales)

    def test_count_pipeline_round_trip_preserves_transform(self, tmp_path):
        pipeline = FeaturePipeline(transformer=CountTransformer(min_scale_count=30,
                                                                scaling="log"))
        pipeline.fit(self._sources())
        pipeline.save(tmp_path / "bundle")
        restored = FeaturePipeline.load(tmp_path / "bundle")
        assert isinstance(restored.transformer, CountTransformer)
        assert restored.transformer.scaling == "log"
        assert restored.transformer.min_scale_count == 30
        np.testing.assert_allclose(restored.transform(self._sources()),
                                   pipeline.transform(self._sources()))

    def test_binary_pipeline_round_trip(self, tmp_path):
        # The grey-box attacker's featurisation: presence/absence features.
        pipeline = FeaturePipeline(transformer=BinaryTransformer(threshold=1.5))
        pipeline.fit(self._sources())
        expected = pipeline.transform(self._sources())
        pipeline.save(tmp_path / "bundle")
        restored = FeaturePipeline.load(tmp_path / "bundle")
        assert isinstance(restored.transformer, BinaryTransformer)
        assert restored.transformer.threshold == 1.5
        assert restored.is_fitted
        np.testing.assert_array_equal(restored.transform(self._sources()), expected)
        assert set(np.unique(restored.transform(self._sources()))) <= {0.0, 1.0}

    def test_binary_substitute_pipeline_round_trip_via_context(self, tmp_path):
        # The exact binary pipeline the second grey-box attacker trains
        # behind, persisted and restored through the context's save path.
        from repro.config import TINY_PROFILE
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(scale=TINY_PROFILE, seed=41)
        binary_pipeline = context.binary_pipeline
        binary_pipeline.save(tmp_path / "bundle")
        restored = FeaturePipeline.load(tmp_path / "bundle")
        assert isinstance(restored.transformer, BinaryTransformer)
        counts = CountExtractor().extract_batch(self._sources())
        np.testing.assert_array_equal(restored.transform_counts(counts),
                                      binary_pipeline.transform_counts(counts))
