"""Tests for SGD / Momentum / Adam."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optimizers import SGD, Adam, Momentum, get_optimizer


def quadratic_grad(param: Parameter) -> np.ndarray:
    """Gradient of 0.5 * ||x - 3||^2 (minimum at 3)."""
    return param.value - 3.0


class TestSGD:
    def test_single_step_moves_against_gradient(self):
        param = Parameter("x", np.array([0.0]))
        param.grad[:] = [2.0]
        SGD(learning_rate=0.1).step([param])
        assert param.value[0] == pytest.approx(-0.2)

    def test_step_clears_gradient(self):
        param = Parameter("x", np.array([0.0]))
        param.grad[:] = [1.0]
        SGD(learning_rate=0.1).step([param])
        assert np.all(param.grad == 0.0)

    def test_converges_on_quadratic(self):
        param = Parameter("x", np.array([10.0]))
        optimizer = SGD(learning_rate=0.2)
        for _ in range(100):
            param.grad[:] = quadratic_grad(param)
            optimizer.step([param])
        assert param.value[0] == pytest.approx(3.0, abs=1e-4)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter("x", np.array([1.0]))
        param.grad[:] = [0.0]
        SGD(learning_rate=0.1, weight_decay=0.5).step([param])
        assert param.value[0] < 1.0

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, weight_decay=-0.1)


class TestMomentum:
    def test_converges_on_quadratic(self):
        param = Parameter("x", np.array([10.0]))
        optimizer = Momentum(learning_rate=0.05, momentum=0.9)
        for _ in range(300):
            param.grad[:] = quadratic_grad(param)
            optimizer.step([param])
        assert param.value[0] == pytest.approx(3.0, abs=1e-3)

    def test_velocity_accumulates(self):
        param = Parameter("x", np.array([0.0]))
        optimizer = Momentum(learning_rate=0.1, momentum=0.9)
        param.grad[:] = [1.0]
        optimizer.step([param])
        first_move = abs(param.value[0])
        param.grad[:] = [1.0]
        optimizer.step([param])
        second_move = abs(param.value[0]) - first_move
        assert second_move > first_move

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter("x", np.array([10.0]))
        optimizer = Adam(learning_rate=0.2)
        for _ in range(300):
            param.grad[:] = quadratic_grad(param)
            optimizer.step([param])
        assert param.value[0] == pytest.approx(3.0, abs=1e-2)

    def test_first_step_size_is_learning_rate(self):
        param = Parameter("x", np.array([0.0]))
        optimizer = Adam(learning_rate=0.01)
        param.grad[:] = [100.0]
        optimizer.step([param])
        # Bias correction makes the first Adam step ~= lr regardless of scale.
        assert abs(param.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_per_parameter_state_is_independent(self):
        a = Parameter("a", np.array([0.0]))
        b = Parameter("b", np.array([0.0]))
        optimizer = Adam(learning_rate=0.1)
        a.grad[:] = [1.0]
        b.grad[:] = [0.0]
        optimizer.step([a, b])
        assert a.value[0] != 0.0
        assert b.value[0] == 0.0

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)

    def test_get_config_reports_hyperparameters(self):
        config = Adam(learning_rate=0.005, beta1=0.8).get_config()
        assert config["type"] == "Adam"
        assert config["learning_rate"] == 0.005
        assert config["beta1"] == 0.8


class TestOptimizerRegistry:
    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("momentum", Momentum), ("adam", Adam)])
    def test_get_optimizer_by_name(self, name, cls):
        assert isinstance(get_optimizer(name), cls)

    def test_get_optimizer_passes_kwargs(self):
        assert get_optimizer("adam", learning_rate=0.5).learning_rate == 0.5

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")

    def test_iteration_counter_increments(self):
        param = Parameter("x", np.array([0.0]))
        optimizer = SGD(learning_rate=0.1)
        for _ in range(3):
            param.grad[:] = [1.0]
            optimizer.step([param])
        assert optimizer.iterations == 3
