"""Tests for the Dataset container and splitting utilities."""

import numpy as np
import pytest

from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.data.splits import stratified_split, train_validation_split
from repro.exceptions import DatasetError


@pytest.fixture()
def dataset():
    rng = np.random.default_rng(0)
    features = rng.random((40, 6))
    labels = np.array([0] * 25 + [1] * 15)
    return Dataset(features=features, labels=labels, name="unit",
                   sample_ids=[f"s{i}" for i in range(40)],
                   families=[f"fam{i % 3}" for i in range(40)],
                   os_versions=["win7"] * 40)


class TestDatasetBasics:
    def test_counts(self, dataset):
        assert dataset.n_samples == 40
        assert dataset.n_features == 6
        assert len(dataset) == 40

    def test_class_counts(self, dataset):
        assert dataset.class_counts() == {"clean": 25, "malware": 15}

    def test_summary_mentions_counts(self, dataset):
        assert "25 clean" in dataset.summary()
        assert "15 malware" in dataset.summary()

    def test_label_feature_mismatch_rejected(self):
        with pytest.raises(Exception):
            Dataset(features=np.zeros((3, 2)), labels=np.array([0, 1]))

    def test_metadata_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(features=np.zeros((3, 2)), labels=np.array([0, 1, 0]),
                    sample_ids=["a", "b"])


class TestSubsetting:
    def test_subset_selects_rows_and_metadata(self, dataset):
        sub = dataset.subset([0, 5, 10], name="sub")
        assert sub.n_samples == 3
        assert sub.sample_ids == ["s0", "s5", "s10"]
        np.testing.assert_array_equal(sub.features[1], dataset.features[5])

    def test_subset_out_of_range_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.subset([0, 99])

    def test_subset_empty_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.subset([])

    def test_of_class_filters(self, dataset):
        malware = dataset.malware_only()
        assert np.all(malware.labels == CLASS_MALWARE)
        assert malware.n_samples == 15

    def test_clean_only(self, dataset):
        assert np.all(dataset.clean_only().labels == CLASS_CLEAN)

    def test_of_class_missing_raises(self):
        single = Dataset(features=np.zeros((2, 2)), labels=np.array([0, 0]))
        with pytest.raises(DatasetError):
            single.malware_only()

    def test_sample_stratified_keeps_both_classes(self, dataset):
        sub = dataset.sample(10, random_state=0)
        assert sub.n_samples == 10
        assert len(np.unique(sub.labels)) == 2

    def test_sample_too_large_rejected(self, dataset):
        with pytest.raises(DatasetError):
            dataset.sample(41)

    def test_shuffled_preserves_content(self, dataset):
        shuffled = dataset.shuffled(random_state=1)
        assert shuffled.n_samples == dataset.n_samples
        assert sorted(shuffled.sample_ids) == sorted(dataset.sample_ids)


class TestCombination:
    def test_concatenate(self, dataset):
        combined = Dataset.concatenate([dataset, dataset], name="double")
        assert combined.n_samples == 80
        assert combined.sample_ids[:40] == dataset.sample_ids

    def test_concatenate_feature_mismatch_rejected(self, dataset):
        other = Dataset(features=np.zeros((2, 3)), labels=np.array([0, 1]))
        with pytest.raises(DatasetError):
            Dataset.concatenate([dataset, other])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(DatasetError):
            Dataset.concatenate([])

    def test_concatenate_drops_metadata_when_missing(self, dataset):
        bare = Dataset(features=np.zeros((2, 6)), labels=np.array([0, 1]))
        combined = Dataset.concatenate([dataset, bare])
        assert combined.sample_ids is None

    def test_with_features_replaces_matrix(self, dataset):
        replaced = dataset.with_features(dataset.features + 0.1, name="adv")
        assert replaced.name == "adv"
        np.testing.assert_array_equal(replaced.labels, dataset.labels)
        assert not np.allclose(replaced.features, dataset.features)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, dataset):
        dataset.save(tmp_path / "ds")
        restored = Dataset.load(tmp_path / "ds")
        np.testing.assert_allclose(restored.features, dataset.features)
        np.testing.assert_array_equal(restored.labels, dataset.labels)
        assert restored.sample_ids == dataset.sample_ids
        assert restored.name == dataset.name


class TestSplits:
    def test_stratified_split_preserves_balance(self, dataset):
        first, second = stratified_split(dataset, 0.6, random_state=0)
        assert first.n_samples + second.n_samples == dataset.n_samples
        ratio_first = np.mean(first.labels == 1)
        ratio_all = np.mean(dataset.labels == 1)
        assert abs(ratio_first - ratio_all) < 0.1

    def test_stratified_split_no_overlap(self, dataset):
        first, second = stratified_split(dataset, 0.5, random_state=0)
        assert set(first.sample_ids).isdisjoint(second.sample_ids)

    def test_stratified_split_is_seeded(self, dataset):
        a1, _ = stratified_split(dataset, 0.5, random_state=5)
        a2, _ = stratified_split(dataset, 0.5, random_state=5)
        assert a1.sample_ids == a2.sample_ids

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(Exception):
            stratified_split(dataset, 0.0)

    def test_train_validation_split_names(self, dataset):
        train, val = train_validation_split(dataset, validation_fraction=0.25,
                                            random_state=0)
        assert train.name == "train"
        assert val.name == "validation"
        assert val.n_samples < train.n_samples
