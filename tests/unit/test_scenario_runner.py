"""Engine-level tests for run_scenario (payload shapes, caching, errors)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSpec, run_scenario


class TestPointScenarios:
    def test_whitebox_point_payload(self, tiny_context):
        report = run_scenario(ScenarioSpec(attack="jsma", theta=0.1, gamma=0.02),
                              context=tiny_context)
        assert report.attack_name == "jsma"
        assert report.defense_name == "none"
        assert report.curve is None and report.live_trace is None
        assert report.attack_result is not None
        assert set(report.detection) == {"target"}
        assert 0.0 <= report.detection["target"] <= 1.0
        assert report.transfer_rate is None  # white-box has no transfer notion
        assert set(report.defense_eval) == {"clean_test", "malware_test",
                                            "advex_test"}

    def test_greybox_point_reports_transfer(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="jsma", attack_params={"early_stop": False},
                         model="substitute", theta=0.1, gamma=0.02),
            context=tiny_context)
        assert set(report.detection) == {"substitute", "target"}
        assert report.transfer_rate == 1.0 - report.detection["target"]

    def test_canonical_greybox_reuses_cached_advex(self, tiny_context):
        spec = ScenarioSpec(attack="jsma", attack_params={"early_stop": False},
                            model="substitute", theta=0.1, gamma=0.02)
        report = run_scenario(spec, context=tiny_context)
        cached = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        assert np.array_equal(report.attack_result.adversarial, cached.features)

    def test_defended_point_adds_detector_surface(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(defense="feature_squeezing", theta=0.1, gamma=0.02),
            context=tiny_context)
        assert "defended[feature_squeezing]" in report.detection
        assert report.detector_name == "feature_squeezing"

    def test_mapping_spec_accepted(self, tiny_context):
        report = run_scenario({"attack": "random_addition", "theta": 0.1,
                               "gamma": 0.02}, context=tiny_context)
        assert report.attack_name == "random_addition"


class TestSweepScenarios:
    def test_sweep_produces_curve_and_no_point_payload(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="random_addition", sweep="gamma", theta=0.1,
                         sweep_values=(0.0, 0.01, 0.02)),
            context=tiny_context)
        assert report.attack_result is None and report.defense_eval is None
        assert [point.gamma for point in report.curve.points] == [0.0, 0.01, 0.02]
        assert report.curve.attack_name == "random_addition"
        assert "target" in report.baseline_detection

    def test_default_grid_follows_scale_profile(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="random_addition", sweep="gamma", theta=0.1),
            context=tiny_context)
        assert len(report.curve.points) == tiny_context.scale.sweep_points_gamma

    def test_theta_sweep_holds_gamma_fixed(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="random_addition", sweep="theta", gamma=0.02,
                         sweep_values=(0.0, 0.1)),
            context=tiny_context)
        assert all(point.gamma == 0.02 for point in report.curve.points)
        assert [point.theta for point in report.curve.points] == [0.0, 0.1]


class TestRobustness:
    def test_robustness_budget_adds_distribution(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="jsma", theta=0.1, gamma=0.02,
                         robustness_budget=5),
            context=tiny_context)
        assert report.robustness is not None
        assert report.robustness.max_features == 5
        assert "robustness[evadable_fraction]" in report.summary()


class TestBinarySubstitute:
    def test_binary_point_run_has_no_defense_cells(self, tiny_context):
        # The target's count-space detector cannot score binary matrices, so
        # the report must not fabricate Table VI cells for them.
        report = run_scenario(
            ScenarioSpec(attack="jsma", attack_params={"early_stop": False},
                         model="binary_substitute", theta=1.0, gamma=0.02),
            context=tiny_context)
        assert report.defense_eval is None
        assert set(report.detection) == {"binary_substitute"}

    def test_binary_substitute_rejects_defenses(self, tiny_context):
        with pytest.raises(ConfigurationError, match="count feature space"):
            run_scenario(ScenarioSpec(model="binary_substitute",
                                      defense="feature_squeezing"),
                         context=tiny_context)


class TestValidationAndSerialisation:
    def test_unknown_attack_rejected_before_any_build(self, tiny_context):
        with pytest.raises(ConfigurationError, match="unknown attack"):
            run_scenario(ScenarioSpec(attack="rowhammer"), context=tiny_context)

    def test_live_scenarios_reject_defenses(self, tiny_context):
        with pytest.raises(ConfigurationError, match="undefended engine"):
            run_scenario(ScenarioSpec(attack="live_greybox",
                                      defense="feature_squeezing"),
                         context=tiny_context)

    def test_live_scenarios_reject_sweeps_and_robustness(self, tiny_context):
        with pytest.raises(ConfigurationError, match="do not apply"):
            run_scenario(ScenarioSpec(attack="live_greybox", sweep="gamma"),
                         context=tiny_context)
        with pytest.raises(ConfigurationError, match="do not apply"):
            run_scenario(ScenarioSpec(attack="live_greybox",
                                      robustness_budget=5),
                         context=tiny_context)

    def test_point_report_json_is_strict_rfc8259(self, tiny_context):
        # defense_eval carries nan cells (TPR of a clean-only set); the JSON
        # payload must encode them as null, never as Python's NaN token.
        report = run_scenario(
            ScenarioSpec(attack="random_addition", theta=0.1, gamma=0.02),
            context=tiny_context)
        text = report.to_json()
        assert "NaN" not in text
        import json

        payload = json.loads(text)
        assert payload["defense_eval"]["clean_test"]["tpr"] is None
        assert payload["defense_eval"]["clean_test"]["tnr"] is not None

    def test_unknown_defense_param_rejected(self, tiny_context):
        with pytest.raises(ConfigurationError, match="no parameter"):
            run_scenario(ScenarioSpec(defense="distillation",
                                      defense_params={"degrees": 451}),
                         context=tiny_context)

    def test_report_json_round_trips_through_json_module(self, tiny_context):
        import json

        report = run_scenario(
            ScenarioSpec(attack="random_addition", theta=0.1, gamma=0.02),
            context=tiny_context)
        payload = json.loads(report.to_json())
        assert payload["spec"]["attack"] == "random_addition"
        assert payload["attack_summary"]["n_samples"] > 0

    def test_render_mentions_key_facts(self, tiny_context):
        report = run_scenario(
            ScenarioSpec(attack="random_addition", theta=0.1, gamma=0.02),
            context=tiny_context)
        rendered = report.render()
        assert "attack=random_addition" in rendered
        assert "defense evaluation" in rendered
