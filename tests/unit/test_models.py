"""Tests for the target / substitute detector models."""

import numpy as np
import pytest

from repro.config import TINY_PROFILE, N_FEATURES
from repro.models.base import DetectorModel
from repro.models.factory import (
    build_substitute_network,
    build_target_network,
    train_binary_substitute_model,
)
from repro.models.substitute_model import SUBSTITUTE_LAYER_SIZES, SubstituteModel
from repro.models.target_model import TARGET_LAYER_SIZES, TargetModel


class TestArchitectures:
    def test_target_paper_architecture_has_four_node_layers(self):
        assert len(TARGET_LAYER_SIZES) == 4
        assert TARGET_LAYER_SIZES[0] == N_FEATURES
        assert TARGET_LAYER_SIZES[-1] == 2

    def test_substitute_paper_architecture_matches_table4(self):
        assert SUBSTITUTE_LAYER_SIZES == (491, 1200, 1500, 1300, 2)

    def test_target_for_scale_shrinks_hidden_layers(self):
        model = TargetModel.for_scale(TINY_PROFILE, random_state=0)
        sizes = model.network.layer_sizes
        assert sizes[0] == N_FEATURES
        assert sizes[-1] == 2
        assert sizes[1] < TARGET_LAYER_SIZES[1]

    def test_substitute_for_scale_keeps_depth(self):
        model = SubstituteModel.for_scale(TINY_PROFILE, random_state=0)
        assert len(model.network.layer_sizes) == len(SUBSTITUTE_LAYER_SIZES)

    def test_factory_builders_use_default_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        target = build_target_network()
        substitute = build_substitute_network()
        assert target.network.layer_sizes[0] == N_FEATURES
        assert substitute.network.layer_sizes[0] == N_FEATURES

    def test_table4_rows_mention_all_layers(self):
        rows = SubstituteModel.table4_rows()
        layer_rows = [row for row in rows if "layer" in row[0]]
        assert len(layer_rows) == 5


class TestTrainedModels:
    def test_target_beats_chance_on_validation(self, tiny_target, tiny_corpus):
        report = tiny_target.report(tiny_corpus.validation)
        assert report.accuracy > 0.8

    def test_target_detects_most_malware(self, tiny_target, tiny_corpus):
        report = tiny_target.report(tiny_corpus.test.malware_only())
        assert report.tpr > 0.6

    def test_target_clean_false_positives_are_limited(self, tiny_target, tiny_corpus):
        report = tiny_target.report(tiny_corpus.test.clean_only())
        assert report.tnr > 0.8

    def test_substitute_agrees_with_target(self, tiny_target, tiny_substitute, tiny_corpus):
        features = tiny_corpus.test.features
        agreement = np.mean(tiny_target.predict(features)
                            == tiny_substitute.predict(features))
        assert agreement > 0.8

    def test_malware_confidence_in_unit_interval(self, tiny_target, tiny_malware):
        confidence = tiny_target.malware_confidence(tiny_malware.features)
        assert confidence.min() >= 0.0
        assert confidence.max() <= 1.0

    def test_detection_rate_matches_prediction_mean(self, tiny_target, tiny_malware):
        rate = tiny_target.detection_rate(tiny_malware.features)
        assert rate == pytest.approx(np.mean(tiny_target.predict(tiny_malware.features) == 1))

    def test_is_fitted_flag(self, tiny_target):
        assert tiny_target.is_fitted
        assert not TargetModel.for_scale(TINY_PROFILE, random_state=0).is_fitted

    def test_save_load_round_trip(self, tmp_path, tiny_target, tiny_malware):
        tiny_target.save(tmp_path / "target")
        restored = DetectorModel.load(tmp_path / "target", name="restored")
        np.testing.assert_array_equal(restored.predict(tiny_malware.features),
                                      tiny_target.predict(tiny_malware.features))

    def test_binary_substitute_trains_on_binary_features(self, tiny_context):
        model, pipeline = train_binary_substitute_model(
            tiny_context.generator, n_clean=40, n_malware=40,
            scale=tiny_context.scale, random_state=0)
        assert model.is_fitted
        sample = pipeline.transform([{"writefile": 5, "winexec": 1}])
        assert set(np.unique(sample)) <= {0.0, 1.0}
