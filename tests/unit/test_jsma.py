"""Tests for the add-only JSMA attack (the paper's core attack)."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import CLASS_CLEAN
from repro.exceptions import AttackError


@pytest.fixture(scope="module")
def whitebox_attack_inputs(request):
    # Session fixtures are function-agnostic; resolve them via request.
    target = request.getfixturevalue("tiny_target")
    malware = request.getfixturevalue("tiny_malware")
    return target, malware


class TestJsmaMechanics:
    def test_result_shapes(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.01))
        result = attack.run(tiny_malware.features)
        assert result.adversarial.shape == result.original.shape
        assert result.perturbed_features.shape == (tiny_malware.n_samples,)

    def test_respects_constraints(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        attack = JsmaAttack(tiny_target.network, constraints)
        result = attack.run(tiny_malware.features)
        assert constraints.is_feasible(result.adversarial, result.original)

    def test_add_only_never_decreases_features(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.03))
        result = attack.run(tiny_malware.features)
        assert np.all(result.adversarial >= result.original - 1e-12)

    def test_feature_budget_respected(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.01)
        budget = constraints.max_features(tiny_malware.n_features)
        result = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        assert result.perturbed_features.max() <= budget

    def test_zero_gamma_is_identity(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.0))
        result = attack.run(tiny_malware.features)
        np.testing.assert_array_equal(result.adversarial, result.original)

    def test_zero_theta_is_identity(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.0, gamma=0.025))
        result = attack.run(tiny_malware.features)
        np.testing.assert_array_equal(result.adversarial, result.original)

    def test_features_stay_in_unit_box(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.5, gamma=0.05))
        result = attack.run(tiny_malware.features)
        assert result.adversarial.min() >= 0.0
        assert result.adversarial.max() <= 1.0

    def test_attack_is_deterministic(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        a = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        b = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        np.testing.assert_array_equal(a.adversarial, b.adversarial)

    def test_invalid_target_class_rejected(self, tiny_target):
        with pytest.raises(AttackError):
            JsmaAttack(tiny_target.network, target_class=3)


class TestJsmaEffectiveness:
    def test_detection_rate_drops_at_paper_operating_point(self, tiny_target, tiny_malware):
        baseline = tiny_target.detection_rate(tiny_malware.features)
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.025))
        result = attack.run(tiny_malware.features)
        assert result.detection_rate < baseline - 0.3

    def test_stronger_attack_is_at_least_as_effective(self, tiny_target, tiny_malware):
        weak = JsmaAttack(tiny_target.network,
                          PerturbationConstraints(theta=0.1, gamma=0.005))
        strong = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.03))
        weak_rate = weak.run(tiny_malware.features).detection_rate
        strong_rate = strong.run(tiny_malware.features).detection_rate
        assert strong_rate <= weak_rate + 0.05

    def test_early_stop_touches_no_more_features_than_full_budget(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.03)
        stopped = JsmaAttack(tiny_target.network, constraints, early_stop=True)
        full = JsmaAttack(tiny_target.network, constraints, early_stop=False)
        assert (stopped.run(tiny_malware.features).mean_perturbed_features
                <= full.run(tiny_malware.features).mean_perturbed_features + 1e-9)

    def test_simplified_gradient_variant_also_attacks(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.025),
                            use_saliency_map=False)
        result = attack.run(tiny_malware.features)
        baseline = tiny_target.detection_rate(tiny_malware.features)
        assert result.detection_rate < baseline

    def test_feature_mask_restricts_choices(self, tiny_target, tiny_malware):
        mask = np.zeros(tiny_malware.n_features, dtype=bool)
        mask[:50] = True
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02, feature_mask=mask)
        result = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        changed = np.abs(result.adversarial - result.original) > 1e-12
        assert not changed[:, 50:].any()


class TestFeaturesPerStep:
    def test_invalid_features_per_step_rejected(self, tiny_target):
        with pytest.raises(AttackError):
            JsmaAttack(tiny_target.network, features_per_step=0)

    def test_budget_respected_with_multi_feature_steps(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.03)
        budget = constraints.max_features(tiny_malware.n_features)
        attack = JsmaAttack(tiny_target.network, constraints,
                            early_stop=False, features_per_step=4)
        result = attack.run(tiny_malware.features)
        assert result.perturbed_features.max() <= budget
        assert constraints.is_feasible(result.adversarial, result.original)

    def test_multi_feature_steps_still_attack(self, tiny_target, tiny_malware):
        baseline = tiny_target.detection_rate(tiny_malware.features)
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.025),
                            features_per_step=3)
        result = attack.run(tiny_malware.features)
        assert result.detection_rate < baseline - 0.2

    def test_single_feature_step_is_default(self, tiny_target):
        assert JsmaAttack(tiny_target.network).features_per_step == 1

    def test_full_budget_spent_without_early_stop(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        budget = constraints.max_features(tiny_malware.n_features)
        one = JsmaAttack(tiny_target.network, constraints, early_stop=False)
        many = JsmaAttack(tiny_target.network, constraints, early_stop=False,
                          features_per_step=budget)
        assert (one.run(tiny_malware.features).mean_perturbed_features
                == pytest.approx(many.run(tiny_malware.features).mean_perturbed_features,
                                 abs=1.0))


class TestSelectFeatures:
    def test_select_features_shape(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network)
        selected = attack.select_features(tiny_malware.features[:5], top_k=3)
        assert selected.shape == (5, 3)

    def test_selected_features_are_valid_indices(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network)
        selected = attack.select_features(tiny_malware.features[:5], top_k=2)
        assert selected.min() >= 0
        assert selected.max() < tiny_malware.n_features

    def test_top1_matches_first_perturbed_feature(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=1.0 / tiny_malware.n_features)
        attack = JsmaAttack(tiny_target.network, constraints, early_stop=False)
        row = tiny_malware.features[:1]
        selected = attack.select_features(row, top_k=1)[0, 0]
        result = attack.run(row)
        changed = np.flatnonzero(np.abs(result.adversarial[0] - result.original[0]) > 1e-12)
        assert selected in changed

    def test_invalid_top_k_rejected(self, tiny_target, tiny_malware):
        with pytest.raises(AttackError):
            JsmaAttack(tiny_target.network).select_features(tiny_malware.features[:1], top_k=0)

    def test_saturated_features_never_selected(self, tiny_target, tiny_malware):
        # A feature already at clip_max cannot be increased under the
        # add-only model, so selection must skip it even when its gradient
        # is the most salient one.
        attack = JsmaAttack(tiny_target.network)
        row = tiny_malware.features[:4].copy()
        baseline = attack.select_features(row, top_k=1)
        row[np.arange(4), baseline[:, 0]] = attack.constraints.clip_max
        reselected = attack.select_features(row, top_k=1)
        for sample in range(4):
            assert reselected[sample, 0] != baseline[sample, 0]

    def test_selection_consistent_with_attack_under_saturation(self, tiny_target,
                                                               tiny_malware):
        constraints = PerturbationConstraints(theta=0.1,
                                              gamma=1.0 / tiny_malware.n_features)
        attack = JsmaAttack(tiny_target.network, constraints, early_stop=False)
        row = tiny_malware.features[:1].copy()
        first = attack.select_features(row, top_k=1)[0, 0]
        row[0, first] = constraints.clip_max  # saturate the previous choice
        selected = attack.select_features(row, top_k=1)[0, 0]
        result = attack.run(row)
        changed = np.flatnonzero(np.abs(result.adversarial[0] - result.original[0]) > 1e-12)
        assert selected in changed
        assert first not in changed


class TestAttackResult:
    def test_summary_contains_operating_point(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.01)
        result = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        summary = result.summary()
        assert summary["theta"] == pytest.approx(0.1)
        assert summary["gamma"] == pytest.approx(0.01)
        assert 0.0 <= summary["detection_rate"] <= 1.0

    def test_evasion_and_detection_are_complementary(self, tiny_target, tiny_malware):
        result = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02)).run(
            tiny_malware.features)
        assert result.evasion_rate + result.detection_rate == pytest.approx(1.0)

    def test_l2_distances_nonzero_when_perturbed(self, tiny_target, tiny_malware):
        result = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02)).run(
            tiny_malware.features)
        perturbed = result.perturbed_features > 0
        assert np.all(result.l2_distances[perturbed] > 0)

    def test_transfer_rate_to_other_model(self, tiny_target, tiny_substitute, tiny_malware):
        result = JsmaAttack(tiny_substitute.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02),
                            early_stop=False).run(tiny_malware.features)
        transfer = result.transfer_rate_to(tiny_target.network)
        detection = result.detection_rate_under(tiny_target.network)
        assert transfer == pytest.approx(1.0 - detection)


class TestPrimedOriginalPredictions:
    """Attack._package reuse of precomputed original predictions."""

    def test_primed_predictions_skip_the_original_predict(self, tiny_target,
                                                          tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.01))
        features = tiny_malware.features
        primed = tiny_target.network.predict(features)

        calls = []
        real_predict = tiny_target.network.predict
        tiny_target.network.predict = lambda x: (calls.append(x.shape[0]),
                                                 real_predict(x))[1]
        try:
            attack.prime_original_predictions(features, primed)
            result = attack.run(features)
        finally:
            tiny_target.network.predict = real_predict
        # The early-stop loop reads probabilities from the Jacobian pass and
        # the originals are primed, so only the adversarial matrix and the
        # baseline computed above go through predict() — exactly one call.
        assert len(calls) == 1
        np.testing.assert_array_equal(result.original_predictions, primed)

    def test_primed_predictions_match_unprimed_run(self, tiny_target, tiny_malware):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
        plain = JsmaAttack(tiny_target.network, constraints).run(tiny_malware.features)
        primed_attack = JsmaAttack(tiny_target.network, constraints)
        primed_attack.prime_original_predictions(
            tiny_malware.features,
            tiny_target.network.predict(tiny_malware.features))
        primed = primed_attack.run(tiny_malware.features)
        np.testing.assert_array_equal(plain.original_predictions,
                                      primed.original_predictions)
        np.testing.assert_array_equal(plain.adversarial, primed.adversarial)

    def test_unmatched_matrix_falls_back_to_fresh_predict(self, tiny_target,
                                                          tiny_malware):
        attack = JsmaAttack(tiny_target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.01))
        other = tiny_malware.features[:4]
        attack.prime_original_predictions(other,
                                          tiny_target.network.predict(other))
        result = attack.run(tiny_malware.features)
        np.testing.assert_array_equal(
            result.original_predictions,
            tiny_target.network.predict(tiny_malware.features))

    def test_mismatched_prime_rejected(self, tiny_target, tiny_malware):
        attack = JsmaAttack(tiny_target.network)
        with pytest.raises(AttackError):
            attack.prime_original_predictions(tiny_malware.features,
                                              np.zeros(3, dtype=np.int64))
