"""Tests for the shared ExperimentContext (lazy building and caching)."""

import numpy as np
import pytest

from repro.config import CLASS_MALWARE, TINY_PROFILE
from repro.experiments.context import ExperimentContext


class TestLazyCaching:
    def test_nothing_is_built_up_front(self):
        context = ExperimentContext(scale=TINY_PROFILE, seed=5)
        description = context.describe()
        assert description["corpus_built"] is False
        assert description["target_trained"] is False
        assert description["substitute_trained"] is False

    def test_corpus_is_cached(self, tiny_context):
        assert tiny_context.corpus is tiny_context.corpus

    def test_target_model_is_cached(self, tiny_context):
        assert tiny_context.target_model is tiny_context.target_model

    def test_substitute_model_is_cached(self, tiny_context):
        assert tiny_context.substitute_model is tiny_context.substitute_model

    def test_pipeline_comes_from_corpus(self, tiny_context):
        assert tiny_context.pipeline is tiny_context.corpus.pipeline

    def test_describe_reflects_built_artifacts(self, tiny_context):
        description = tiny_context.describe()
        assert description["corpus_built"] is True
        assert description["target_trained"] is True
        assert description["scale"] == "tiny"


class TestAttackInputs:
    def test_attack_malware_is_all_malware(self, tiny_context):
        assert np.all(tiny_context.attack_malware.labels == CLASS_MALWARE)

    def test_attack_malware_respects_profile_cap(self, tiny_context):
        assert tiny_context.attack_malware.n_samples <= tiny_context.scale.attack_samples

    def test_greybox_adversarial_is_cached_per_operating_point(self, tiny_context):
        first = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        second = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        assert first is second

    def test_greybox_adversarial_distinct_operating_points_differ(self, tiny_context):
        small = tiny_context.greybox_adversarial(theta=0.1, gamma=0.01)
        large = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        assert small is not large
        assert (np.abs(large.features - large.features.clip(0, 1)).max() == 0.0)

    def test_greybox_adversarial_respects_add_only(self, tiny_context):
        advex = tiny_context.greybox_adversarial(theta=0.1, gamma=0.02)
        original = tiny_context.attack_malware.features
        assert np.all(advex.features >= original - 1e-12)

    def test_binary_pipeline_available_after_binary_substitute(self, tiny_context):
        _ = tiny_context.binary_substitute
        assert tiny_context.binary_pipeline is not None


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = ExperimentContext(scale=TINY_PROFILE, seed=9).corpus
        b = ExperimentContext(scale=TINY_PROFILE, seed=9).corpus
        np.testing.assert_allclose(a.train.features, b.train.features)

    def test_different_seed_different_corpus(self):
        a = ExperimentContext(scale=TINY_PROFILE, seed=9).corpus
        b = ExperimentContext(scale=TINY_PROFILE, seed=10).corpus
        assert not np.allclose(a.train.features, b.train.features)


class TestDtypeOverride:
    def test_invalid_dtype_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentContext(scale=TINY_PROFILE, seed=9, dtype="float16")

    def test_dtype_override_builds_float32_artifacts(self):
        from repro.nn.engine import compute_dtype

        engine_dtype_before = compute_dtype()
        context = ExperimentContext(scale=TINY_PROFILE, seed=9, dtype="float32")
        assert context.describe()["dtype"] == "float32"
        target = context.target_model
        # The override applies to the built network without mutating the
        # process-wide engine dtype.
        assert target.network.layers[0].weight.value.dtype == np.float32
        assert compute_dtype() == engine_dtype_before

    def test_dtype_override_keys_distinct_cache_entries(self, tmp_path):
        from repro.utils.artifact_cache import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        f64 = ExperimentContext(scale=TINY_PROFILE, seed=9, cache=cache,
                                dtype="float64")
        f32 = ExperimentContext(scale=TINY_PROFILE, seed=9, cache=cache,
                                dtype="float32")
        assert f64._cache_key("target") != f32._cache_key("target")
