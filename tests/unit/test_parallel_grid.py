"""Tests for the process-pool grid executor (repro.parallel)."""

import pickle
import random

import pytest

from repro.exceptions import ParallelError
from repro.parallel import (
    GridExecutor,
    GridResult,
    resolve_start_method,
    resolve_workers,
    shard_indices,
)
from repro.parallel.pool import RemoteFailure
from repro.scenarios import ScenarioSpec, run_scenario


def _grid_specs(seed: int = 123) -> list:
    return ScenarioSpec.grid(
        attacks=[{"id": "jsma", "params": {"early_stop": False}},
                 "random_addition"],
        defenses=["none", "feature_squeezing"],
        model="substitute", scale="tiny", seed=seed, theta=0.1, gamma=0.02)


class TestPoolHelpers:
    def test_resolve_workers_defaults_to_cpu_count(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        assert resolve_workers(3) == 3
        with pytest.raises(ParallelError):
            resolve_workers(-1)

    def test_resolve_start_method_validates(self):
        assert resolve_start_method() in ("fork", "spawn")
        assert resolve_start_method("spawn") == "spawn"
        with pytest.raises(ParallelError):
            resolve_start_method("teleport")

    def test_start_method_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        assert resolve_start_method() == "spawn"

    def test_shard_indices_round_robin(self):
        shards = shard_indices(7, 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(i for shard in shards for i in shard) == list(range(7))

    def test_shard_indices_keeps_empty_shards(self):
        assert shard_indices(2, 4) == [[0], [1], [], []]
        with pytest.raises(ParallelError):
            shard_indices(2, 0)

    def test_remote_failure_reraises_with_traceback(self):
        try:
            raise ValueError("boom")
        except ValueError as error:
            failure = RemoteFailure.capture("cell 3", error)
        transported = pickle.loads(pickle.dumps(failure))
        with pytest.raises(ParallelError, match="cell 3.*ValueError.*boom"):
            transported.raise_()


class TestSerialExecution:
    def test_serial_matches_direct_run_scenario(self, tiny_context):
        specs = _grid_specs()[:2]
        direct = [run_scenario(spec, context=tiny_context) for spec in specs]
        grid = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        assert grid.start_method is None
        assert grid.n_workers == 1
        assert [r.to_json(include_timing=False) for r in grid.reports] == \
               [r.to_json(include_timing=False) for r in direct]

    def test_empty_grid(self):
        result = GridExecutor(n_workers=2).run([])
        assert result.reports == [] and len(result) == 0

    def test_mapping_specs_accepted(self, tiny_context):
        report = GridExecutor(n_workers=1).run(
            [{"attack": "random_addition", "scale": "tiny", "seed": 123}],
            context=tiny_context)[0]
        assert report.attack_name == "random_addition"

    def test_serial_without_context_shares_one_context_per_key(self, tmp_path):
        # Two cells with the same (scale, seed, dtype) triple must not build
        # the corpus twice: the executor memoises per key, cache-backed.
        executor = GridExecutor(n_workers=1, cache=tmp_path / "cache")
        specs = [ScenarioSpec(attack="random_addition", scale="tiny", seed=9),
                 ScenarioSpec(attack="random_addition", scale="tiny", seed=9,
                              theta=0.2)]
        result = executor.run(specs)
        assert len(result) == 2
        # The cache now warm-starts a fresh executor instantly.
        warm = GridExecutor(n_workers=1, cache=tmp_path / "cache").run(specs[:1])
        assert warm[0].to_json(include_timing=False) == \
               result[0].to_json(include_timing=False)


class TestParallelExecution:
    def test_parallel_reports_are_byte_identical_to_serial(self, tiny_context):
        specs = _grid_specs()
        serial = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        parallel = GridExecutor(n_workers=2).run(specs, context=tiny_context)
        assert parallel.n_workers == 2
        assert parallel.start_method in ("fork", "spawn")
        assert [r.to_json(include_timing=False) for r in parallel.reports] == \
               [r.to_json(include_timing=False) for r in serial.reports]

    def test_shuffled_shard_assignment_is_byte_identical(self, tiny_context):
        # The grid determinism contract: whatever order (and therefore
        # whatever shard/worker assignment) the cells execute in, the
        # per-spec payloads are byte-identical to serial execution.  The
        # permutation interleaves a 3-way round-robin shard assignment and
        # then shuffles, so cells land on different workers than in spec
        # order.
        specs = _grid_specs()
        serial = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        by_label = {spec.label: report.to_json(include_timing=False)
                    for spec, report in zip(specs, serial.reports)}
        shuffled = [specs[index] for shard in shard_indices(len(specs), 3)
                    for index in shard]
        random.Random(7).shuffle(shuffled)
        parallel = GridExecutor(n_workers=2).run(shuffled, context=tiny_context)
        # Reports come back in (shuffled) spec order...
        assert [r.spec.label for r in parallel.reports] == \
               [spec.label for spec in shuffled]
        # ...and every payload matches its serial counterpart byte-for-byte.
        for spec, report in zip(shuffled, parallel.reports):
            assert report.to_json(include_timing=False) == by_label[spec.label]
        for spec, report in zip(shuffled, parallel.reports):
            assert report.summary(include_timing=False) == {
                key: value
                for key, value in serial.reports[specs.index(spec)]
                .summary(include_timing=False).items()}

    def test_parallel_without_shared_context_uses_cache(self, tmp_path,
                                                        tiny_context):
        # Workers resolve contexts from the spec triple + shared cache.
        specs = [ScenarioSpec(attack="random_addition", scale="tiny", seed=123),
                 ScenarioSpec(attack="random_addition", scale="tiny", seed=123,
                              gamma=0.03)]
        serial = [run_scenario(spec, context=tiny_context) for spec in specs]
        parallel = GridExecutor(n_workers=2, cache=tmp_path / "cache").run(specs)
        assert [r.to_json(include_timing=False) for r in parallel.reports] == \
               [r.to_json(include_timing=False) for r in serial]

    def test_spawn_workers_rebuild_shared_context_from_cache(self, tmp_path):
        # Under spawn nothing is inherited: workers must reconstruct the
        # governing context from its (scale, seed, dtype) triple + cache.
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        from repro.config import TINY_PROFILE
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(scale=TINY_PROFILE, seed=321,
                                    cache=tmp_path / "cache")
        specs = [ScenarioSpec(attack="random_addition", scale="tiny", seed=321),
                 ScenarioSpec(attack="random_addition", scale="tiny", seed=321,
                              gamma=0.03)]
        serial = GridExecutor(n_workers=1).run(specs, context=context)
        spawned = GridExecutor(n_workers=2, start_method="spawn").run(
            specs, context=context)
        assert spawned.start_method == "spawn"
        assert [r.to_json(include_timing=False) for r in spawned.reports] == \
               [r.to_json(include_timing=False) for r in serial.reports]

    def test_worker_failure_propagates_with_cell_name(self, tiny_context):
        specs = [ScenarioSpec(attack="random_addition", scale="tiny", seed=123,
                              label="good cell"),
                 # binary-substitute cells cannot carry a defense: the worker
                 # raises ConfigurationError, which must travel back.
                 ScenarioSpec(attack="jsma", defense="feature_squeezing",
                              model="binary_substitute", scale="tiny",
                              seed=123, label="bad cell")]
        with pytest.raises(ParallelError, match="bad cell"):
            GridExecutor(n_workers=2).run(specs, context=tiny_context)

    def test_reports_pickle_roundtrip(self, tiny_context):
        report = GridExecutor(n_workers=1).run(
            [_grid_specs()[0]], context=tiny_context)[0]
        clone = pickle.loads(pickle.dumps(report))
        assert clone.to_json() == report.to_json()


class TestGridResult:
    def _result(self, tiny_context) -> GridResult:
        return GridExecutor(n_workers=1).run(_grid_specs()[:2],
                                             context=tiny_context)

    def test_render_mentions_cells_and_mode(self, tiny_context):
        rendered = self._result(tiny_context).render()
        assert "2 cells" in rendered
        assert "serial" in rendered
        assert "jsma vs none" in rendered

    def test_to_json_round_trips_and_timing_flag(self, tiny_context):
        import json

        result = self._result(tiny_context)
        payload = json.loads(result.to_json())
        assert payload["n_cells"] == 2
        assert "elapsed_s" in payload
        untimed = json.loads(result.to_json(include_timing=False))
        assert "elapsed_s" not in untimed
        assert all("elapsed_s" not in report for report in untimed["reports"])

    def test_summaries_follow_spec_order(self, tiny_context):
        summaries = self._result(tiny_context).summaries()
        assert [s["defense"] for s in summaries] == ["none", "feature_squeezing"]
