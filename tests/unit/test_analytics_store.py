"""Tests of the analytics store: schema evolution, queries, reports.

Covers the edge cases the store is designed around: an empty store, a
duplicated run id, segments written under an older schema, and two
processes appending concurrently into one root.
"""

from __future__ import annotations

import json
import multiprocessing
import uuid

import numpy as np
import pytest

from repro.analytics import (
    AnalyticsStore,
    build_report,
    import_bench,
    record_serve_run,
    render_report,
    schema,
    traffic_kind,
)
from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import AnalyticsError, ServingError
from repro.serving.stats import LatencyTracker, ThroughputReport


@pytest.fixture()
def store(tmp_path):
    return AnalyticsStore(tmp_path / "store")


def _verdict(request_id, label, *, latency_ms=1.0, status="ok",
             probability=0.5, model_version="v1"):
    return {"request_id": request_id, "label": label,
            "malware_probability": probability, "latency_ms": latency_ms,
            "status": status, "model_version": model_version}


def _serve_run(store, run_id, *, model_version="v1", started_at=100.0,
               evaded=1, total=4, p99_ms=2.0, sheds=0.0):
    """Record a small serve run with ``evaded``/``total`` adv evasions."""
    verdicts = [
        _verdict(f"adv-{index:03d}",
                 CLASS_CLEAN if index < evaded else CLASS_MALWARE,
                 model_version=model_version)
        for index in range(total)
    ] + [_verdict("clean-000", CLASS_CLEAN, model_version=model_version),
         _verdict("malware-000", CLASS_MALWARE, model_version=model_version)]
    throughput = ThroughputReport(
        n_requests=len(verdicts), elapsed_s=1.0,
        requests_per_s=float(len(verdicts)), mean_ms=1.0, p50_ms=1.0,
        p95_ms=p99_ms, p99_ms=p99_ms, max_ms=p99_ms)
    obs_snapshot = {"metrics": {"counters": {"serve.sheds": sheds},
                                "gauges": {}, "histograms": {}}, "events": []}
    record_serve_run(store, run_id, verdicts, model_version=model_version,
                     started_at=started_at, throughput=throughput,
                     obs_snapshot=obs_snapshot)


# --------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------- #
class TestSchema:
    def test_unknown_table_rejected(self):
        with pytest.raises(AnalyticsError):
            schema.table_dtype("nope")

    def test_unknown_column_rejected(self):
        with pytest.raises(AnalyticsError):
            schema.make_rows("runs", [{"run_id": "r", "typo": 1}])

    def test_missing_columns_take_defaults(self):
        rows = schema.make_rows("verdicts", [{"run_id": "r",
                                              "request_id": "adv-0"}])
        assert rows["traffic"][0] == "other"
        assert rows["label"][0] == -1
        assert rows["status"][0] == "ok"

    def test_traffic_kind_prefixes(self):
        assert traffic_kind("adv-017") == "adv"
        assert traffic_kind("clean-2") == "clean"
        assert traffic_kind("malware-9") == "malware"
        assert traffic_kind("req-1") == "other"
        assert traffic_kind("noprefix") == "other"


# --------------------------------------------------------------------- #
# Store mechanics
# --------------------------------------------------------------------- #
class TestStoreMechanics:
    def test_empty_store_scans_queries_and_reports(self, store):
        assert len(store.scan("verdicts")) == 0
        assert len(store.query("runs", where={"kind": "serve"})) == 0
        assert store.group_by("metrics", "name", "value") == {}
        assert len(store.top_k("metrics", "value")) == 0
        assert store.run_ids() == []
        assert len(store.runs()) == 0
        report = build_report(store)
        assert report["n_runs"] == 0
        assert "no recorded runs" in render_report(report)

    def test_append_empty_writes_nothing(self, store):
        assert store.append("runs", []) is None
        assert store.segments("runs") == []

    def test_append_and_scan_round_trip(self, store):
        store.append("metrics", [{"run_id": "r1", "name": "m", "value": 2.0}])
        store.append("metrics", [{"run_id": "r2", "name": "m", "value": 4.0}])
        scanned = store.scan("metrics")
        assert len(scanned) == 2
        assert len(store.segments("metrics")) == 2
        assert set(scanned["run_id"].tolist()) == {"r1", "r2"}

    def test_query_scalar_membership_and_callable(self, store):
        store.append("metrics", [
            {"run_id": "r1", "name": "a", "value": 1.0},
            {"run_id": "r1", "name": "b", "value": 5.0},
            {"run_id": "r2", "name": "a", "value": 9.0},
        ])
        assert len(store.query("metrics", where={"run_id": "r1"})) == 2
        assert len(store.query("metrics", where={"name": ["a", "b"],
                                                 "run_id": "r1"})) == 2
        big = store.query("metrics", where={"value": lambda v: v > 4.0})
        assert sorted(big["value"].tolist()) == [5.0, 9.0]

    def test_query_unknown_column_rejected(self, store):
        store.append("metrics", [{"run_id": "r", "name": "a", "value": 1.0}])
        with pytest.raises(AnalyticsError):
            store.query("metrics", where={"typo": 1})

    def test_query_column_projection(self, store):
        store.append("metrics", [{"run_id": "r", "name": "a", "value": 1.0}])
        projected = store.query("metrics", columns=["run_id", "value"])
        assert projected.dtype.names == ("run_id", "value")

    def test_group_by_and_top_k(self, store):
        store.append("verdicts", [
            {"run_id": "r1", "request_id": "adv-0", "latency_ms": 4.0},
            {"run_id": "r1", "request_id": "adv-1", "latency_ms": 2.0},
            {"run_id": "r2", "request_id": "adv-0", "latency_ms": 10.0},
        ])
        means = store.group_by("verdicts", "run_id", "latency_ms")
        assert means == {"r1": 3.0, "r2": 10.0}
        counts = store.group_by("verdicts", "run_id", "latency_ms",
                                agg="count")
        assert counts == {"r1": 2, "r2": 1}
        slowest = store.top_k("verdicts", "latency_ms", k=1)
        assert slowest["run_id"][0] == "r2"
        fastest = store.top_k("verdicts", "latency_ms", k=1, largest=False)
        assert fastest["latency_ms"][0] == 2.0
        with pytest.raises(AnalyticsError):
            store.group_by("verdicts", "run_id", "latency_ms", agg="median")

    def test_group_by_compound_key(self, store):
        store.append("metrics", [
            {"run_id": "r1", "name": "a", "value": 1.0},
            {"run_id": "r1", "name": "a", "value": 3.0},
            {"run_id": "r1", "name": "b", "value": 7.0},
        ])
        means = store.group_by("metrics", ["run_id", "name"], "value")
        assert means == {("r1", "a"): 2.0, ("r1", "b"): 7.0}

    def test_duplicate_run_ids_dedupe_to_earliest(self, store):
        store.append("runs", [{"run_id": "r1", "started_at": 50.0,
                               "n_requests": 8}])
        store.append("runs", [{"run_id": "r1", "started_at": 10.0,
                               "n_requests": 4}])
        store.append("runs", [{"run_id": "r0", "started_at": 30.0}])
        runs = store.runs()
        assert runs["run_id"].tolist() == ["r1", "r0"]
        assert int(runs[runs["run_id"] == "r1"]["n_requests"][0]) == 4
        assert store.run_ids() == ["r0", "r1"]

    def test_schema_evolution_fills_defaults_and_drops_unknown(self, store):
        # A segment written before `status`/`model_version` existed, with a
        # column the current schema no longer knows.
        old_dtype = np.dtype([("run_id", "U64"), ("request_id", "U64"),
                              ("label", "i4"), ("retired_column", "f8")])
        old = np.zeros(2, dtype=old_dtype)
        old["run_id"] = "ancient"
        old["request_id"] = ["adv-0", "adv-1"]
        old["label"] = [CLASS_CLEAN, CLASS_MALWARE]
        old["retired_column"] = 9.9
        table_dir = store.root / "verdicts"
        table_dir.mkdir(parents=True)
        np.save(table_dir / f"seg-0-{uuid.uuid4().hex[:12]}.npy", old,
                allow_pickle=False)

        scanned = store.scan("verdicts")
        assert scanned.dtype == schema.table_dtype("verdicts")
        assert scanned["status"].tolist() == ["ok", "ok"]
        assert scanned["traffic"].tolist() == ["other", "other"]
        assert "retired_column" not in scanned.dtype.names
        # New-schema rows appended next to the old segment read seamlessly.
        store.append("verdicts", [{"run_id": "modern", "request_id": "adv-2",
                                   "traffic": "adv", "status": "shed"}])
        assert len(store.scan("verdicts")) == 3

    def test_tmp_segments_invisible_to_readers(self, store):
        store.append("metrics", [{"run_id": "r", "name": "a", "value": 1.0}])
        table_dir = store.root / "metrics"
        (table_dir / ".tmp-seg-0-dead.npy").write_bytes(b"torn write")
        assert len(store.scan("metrics")) == 1

    def test_sql_path_gated_on_duckdb(self, store):
        if store.has_sql:  # pragma: no cover - image has no duckdb
            pytest.skip("duckdb installed; gating path not reachable")
        with pytest.raises(AnalyticsError, match="duckdb"):
            store.sql("SELECT 1")


def _writer_process(root, writer_id, n_appends):
    writer_store = AnalyticsStore(root)
    for index in range(n_appends):
        writer_store.append("metrics", [
            {"run_id": f"w{writer_id}", "name": f"m{index}",
             "value": float(index)}])


class TestConcurrentWriters:
    def test_two_processes_share_one_root(self, store):
        n_appends = 10
        context = multiprocessing.get_context("spawn")
        workers = [context.Process(target=_writer_process,
                                   args=(str(store.root), writer, n_appends))
                   for writer in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        scanned = store.scan("metrics")
        assert len(scanned) == 2 * n_appends
        per_writer = store.group_by("metrics", "run_id", "value", agg="count")
        assert per_writer == {"w0": n_appends, "w1": n_appends}
        assert not list((store.root / "metrics").glob(".tmp-*"))


# --------------------------------------------------------------------- #
# Ingest
# --------------------------------------------------------------------- #
class TestIngest:
    def test_record_serve_run_requires_run_id(self, store):
        with pytest.raises(AnalyticsError):
            record_serve_run(store, "", [])

    def test_record_serve_run_persists_all_tables(self, store):
        obs_snapshot = {
            "metrics": {"counters": {"serve.requests": 6.0},
                        "gauges": {"batcher.queue_depth": {"last": 1.0,
                                                           "max": 3.0}},
                        "histograms": {"batcher.batch_size":
                                       {"count": 2, "sum": 6.0, "min": 2.0,
                                        "max": 4.0, "mean": 3.0}}},
            "events": [{"kind": "counter", "name": "serve.requests",
                        "value": 6.0, "span_id": 0, "parent_id": 1}],
        }
        record_serve_run(
            store, "run-a",
            [_verdict("adv-0", CLASS_CLEAN), _verdict("clean-0", CLASS_CLEAN)],
            started_at=10.0,
            throughput=ThroughputReport(n_requests=2, elapsed_s=0.5,
                                        requests_per_s=4.0, mean_ms=1.0,
                                        p50_ms=1.0, p95_ms=2.0, p99_ms=2.0,
                                        max_ms=2.0),
            obs_snapshot=obs_snapshot,
            curves={"gamma_sweep": [(0.01, 0.2), (0.02, 0.5)]})
        runs = store.runs()
        assert runs["run_id"].tolist() == ["run-a"]
        assert runs["model_version"][0] == "v1"  # taken from the verdicts
        assert int(runs["n_requests"][0]) == 2
        verdicts = store.scan("verdicts")
        assert verdicts["traffic"].tolist() == ["adv", "clean"]
        metrics = store.scan("metrics")
        names = set(metrics["name"].tolist())
        assert {"throughput.rps", "latency.p99_ms", "serve.requests",
                "batcher.queue_depth.max",
                "batcher.batch_size.count"} <= names
        assert len(store.scan("events")) == 1
        curve = store.query("curves", where={"curve": "gamma_sweep"})
        assert curve["y"].tolist() == [0.2, 0.5]

    def test_import_bench_is_idempotent(self, store, tmp_path):
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text(json.dumps({
            "serve_batched": {"requests_per_s": 1000.0, "speedup": 5.5},
            "notes": "ignored, not a section mapping",
            "flags": {"ok": True},
        }))
        imported = import_bench(store, [bench])
        assert imported == ["bench:BENCH_serving"]
        assert import_bench(store, [bench]) == []  # second import: no-op
        runs = store.runs()
        assert runs["kind"].tolist() == ["bench"]
        metrics = store.scan("metrics")
        assert set(metrics["name"].tolist()) == {
            "serve_batched.requests_per_s", "serve_batched.speedup"}
        assert all(kind == "bench" for kind in metrics["kind"].tolist())

    def test_import_bench_rejects_non_object(self, store, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(AnalyticsError):
            import_bench(store, [bad])


class TestTraceIngest:
    def _traced_snapshot(self):
        return {"metrics": {}, "events": [
            {"kind": "span", "name": "request", "value": 0.010,
             "span_id": 1, "parent_id": 0, "trace_id": "adv-0",
             "tags": {"status": "ok"}},
            {"kind": "span", "name": "request.score", "value": 0.002,
             "span_id": 2, "parent_id": 1, "trace_id": "adv-0",
             "tags": {"worker": 1, "error": True}},
            {"kind": "span", "name": "fleet.dispatch", "value": 0.001,
             "span_id": 3, "parent_id": 0},  # untraced: not a request hop
            {"kind": "alert", "name": "slo.latency", "value": 20.0,
             "span_id": 0, "parent_id": 0,
             "tags": {"slow_burn": 7.5, "attainment": 0.8,
                      "on_breach": "shed"}},
        ]}

    def test_traced_spans_and_alerts_land_in_tables(self, store):
        record_serve_run(store, "run-t", [_verdict("adv-0", CLASS_CLEAN)],
                         obs_snapshot=self._traced_snapshot())
        spans = store.scan("spans")
        assert len(spans) == 2  # the untraced dispatch span stays out
        by_name = {row["name"].item(): row for row in spans}
        root = by_name["request"]
        assert root["trace_id"] == "adv-0"
        assert root["duration_ms"] == pytest.approx(10.0)
        assert int(root["worker"]) == -1
        score = by_name["request.score"]
        assert int(score["worker"]) == 1
        assert int(score["error"]) == 1
        alerts = store.scan("alerts")
        assert len(alerts) == 1
        assert alerts["slo"][0] == "slo.latency"
        assert alerts["on_breach"][0] == "shed"
        assert float(alerts["fast_burn"][0]) == pytest.approx(20.0)
        assert float(alerts["slow_burn"][0]) == pytest.approx(7.5)
        assert float(alerts["attainment"][0]) == pytest.approx(0.8)

    def test_span_rows_reassemble_into_trees(self, store):
        from repro.obs import SpanCollector

        record_serve_run(store, "run-t", [_verdict("adv-0", CLASS_CLEAN)],
                         obs_snapshot=self._traced_snapshot())
        collector = SpanCollector()
        for row in store.scan("spans"):
            collector.add({"kind": "span", "name": row["name"].item(),
                           "trace_id": row["trace_id"].item(),
                           "span_id": int(row["span_id"]),
                           "parent_id": int(row["parent_id"]),
                           "value": float(row["duration_ms"]) / 1000.0})
        tree = collector.tree("adv-0")
        assert tree.complete
        assert tree.root.name == "request"

    def test_events_carry_trace_id(self, store):
        record_serve_run(store, "run-t", [],
                         obs_snapshot=self._traced_snapshot())
        events = store.scan("events")
        traced = events[events["name"] == "request"]
        assert traced["trace_id"].tolist() == ["adv-0"]

    def test_old_events_segments_upgrade_with_blank_trace_id(self, store):
        old_dtype = np.dtype([("run_id", "U64"), ("kind", "U16"),
                              ("name", "U80"), ("value", "f8"),
                              ("span_id", "i8"), ("parent_id", "i8")])
        old = np.array([("run-old", "span", "request", 0.01, 1, 0)],
                       dtype=old_dtype)
        upgraded = schema.upgrade("events", old)
        assert upgraded["trace_id"].tolist() == [""]
        assert upgraded["name"].tolist() == ["request"]


# --------------------------------------------------------------------- #
# Report
# --------------------------------------------------------------------- #
class TestReport:
    def test_drift_and_p99_regression_across_versions(self, store):
        _serve_run(store, "run-1", model_version="vA", started_at=10.0,
                   evaded=1, p99_ms=2.0)
        _serve_run(store, "run-2", model_version="vA", started_at=20.0,
                   evaded=2, p99_ms=2.05)
        _serve_run(store, "run-3", model_version="vB", started_at=30.0,
                   evaded=4, p99_ms=3.0, sheds=1.0)

        report = build_report(store)
        assert report["n_serve_runs"] == 3
        assert report["model_versions"] == ["vA", "vB"]

        drift = report["evasion_drift"]["by_model_version"]
        assert drift["vA"]["delta"] == pytest.approx(0.25)  # 1/4 → 2/4
        assert drift["vB"]["n_runs"] == 1
        across = report["evasion_drift"]["across_versions"]
        assert across["highest"]["model_version"] == "vB"
        assert across["spread"] == pytest.approx(1.0 - 0.375)

        # run-2 → run-3 p99 went 2.05 → 3.0: > +10%, flagged.
        assert report["p99"]["n_regressions"] == 1
        assert report["p99"]["worst"]["run_id"] == "run-3"
        by_id = {record["run_id"]: record for record in report["serve_runs"]}
        assert by_id["run-2"]["p99_regression"] is False
        assert by_id["run-3"]["shed_rate"] == pytest.approx(1.0 / 6.0)

        rendered = render_report(report, store_root=str(store.root))
        assert "evasion drift [vA]" in rendered
        assert "evasion across versions" in rendered
        assert "p99 regressions: 1 runs" in rendered
        assert "run-3" in rendered

    def test_report_orders_runs_by_start_time(self, store):
        _serve_run(store, "late", started_at=99.0)
        _serve_run(store, "early", started_at=1.0)
        report = build_report(store)
        assert [record["run_id"] for record in report["serve_runs"]] == \
               ["early", "late"]

    def test_report_without_regressions_says_so(self, store):
        _serve_run(store, "run-1", started_at=1.0, p99_ms=2.0)
        _serve_run(store, "run-2", started_at=2.0, p99_ms=2.01)
        rendered = render_report(build_report(store))
        assert "p99 regressions: none" in rendered

    def test_bench_runs_listed_separately(self, store, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({"s": {"v": 1.0}}))
        import_bench(store, [bench])
        _serve_run(store, "run-1")
        report = build_report(store)
        assert report["n_serve_runs"] == 1
        assert report["bench_runs"] == ["bench:BENCH_x"]
        assert "imported benchmarks: bench:BENCH_x" in render_report(report)

    def test_empty_store_renders_explicit_message(self, store):
        rendered = render_report(build_report(store))
        assert "no recorded runs" in rendered

    def test_runs_only_store_names_every_skipped_section(self, store):
        # A store holding runs rows but no verdicts/metrics (e.g. recorded
        # by a version that predates those tables) must diagnose each
        # missing section instead of silently rendering nothing.
        store.append("runs", [{"run_id": "bare", "kind": "serve",
                               "started_at": 1.0, "n_requests": 4}])
        rendered = render_report(build_report(store))
        assert "evasion drift: skipped — no adversarial verdicts" in rendered
        assert "p99 regressions: skipped — need at least 2 serve runs" \
            in rendered
        assert "slo alerts: none recorded" in rendered

    def test_alert_rows_render_headline(self, store):
        _serve_run(store, "run-1", started_at=1.0)
        store.append("alerts", [
            {"run_id": "run-1", "slo": "slo.latency", "on_breach": "shed",
             "fast_burn": 20.0, "slow_burn": 7.0, "attainment": 0.8},
            {"run_id": "run-1", "slo": "slo.latency", "on_breach": "shed",
             "fast_burn": 35.0, "slow_burn": 9.0, "attainment": 0.7},
        ])
        report = build_report(store)
        assert report["alerts"]["n_alerts"] == 2
        entry = report["alerts"]["by_slo"]["slo.latency"]
        assert entry["n_alerts"] == 2
        assert entry["worst_fast_burn"] == pytest.approx(35.0)
        rendered = render_report(report)
        assert "slo alerts: 2 fired" in rendered
        assert "slo.latency ×2" in rendered


# --------------------------------------------------------------------- #
# Streaming latency tracker (P² quantiles)
# --------------------------------------------------------------------- #
class TestStreamingLatencyTracker:
    def test_small_samples_are_exact(self):
        streaming = LatencyTracker(streaming=True)
        exact = LatencyTracker()
        for value in (4.0, 1.0, 3.0):
            streaming.record(value)
            exact.record(value)
        a, b = streaming.report(1.0), exact.report(1.0)
        assert a.p50_ms == b.p50_ms
        assert a.p99_ms == b.p99_ms
        assert a.mean_ms == pytest.approx(b.mean_ms)
        assert a.max_ms == b.max_ms

    def test_parity_with_exact_quantiles(self):
        rng = np.random.default_rng(2019)
        latencies = rng.lognormal(mean=0.0, sigma=0.6, size=20_000)
        streaming = LatencyTracker(streaming=True)
        exact = LatencyTracker()
        for value in latencies:
            streaming.record(value)
        exact.extend(latencies)
        a, b = streaming.report(2.0), exact.report(2.0)
        assert a.n_requests == b.n_requests == 20_000
        assert a.mean_ms == pytest.approx(b.mean_ms)
        assert a.max_ms == b.max_ms
        for name in ("p50_ms", "p95_ms", "p99_ms"):
            assert getattr(a, name) == pytest.approx(getattr(b, name),
                                                     rel=0.02)

    def test_streaming_mode_does_not_retain_latencies(self):
        tracker = LatencyTracker(streaming=True)
        tracker.record_batch(1.5, 100)
        assert tracker.count == 100
        with pytest.raises(ServingError):
            _ = tracker.latencies_ms

    def test_streaming_reset_and_empty_report(self):
        tracker = LatencyTracker(streaming=True)
        tracker.record(2.0)
        tracker.reset()
        assert tracker.count == 0
        assert tracker.report(1.0) == ThroughputReport.empty(1.0)
        tracker.record(3.0)
        assert tracker.report(1.0).p99_ms == 3.0
