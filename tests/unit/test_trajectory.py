"""Tests for trajectory recording, slicing and the top-k selection helpers."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.trajectory import JsmaTrajectory, TrajectoryRecorder
from repro.exceptions import AttackError
from repro.utils.topk import kth_largest, top_k_indices


class TestTopKIndices:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(17, 40))
        for k in (1, 3, 40, 64):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :min(k, 40)]
            np.testing.assert_array_equal(top_k_indices(scores, k), expected)

    def test_ties_break_towards_lower_index(self):
        scores = np.array([[1.0, 5.0, 5.0, 0.0, 5.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 3), [[1, 2, 4]])

    def test_tie_group_straddling_the_k_boundary(self):
        # Three tied maxima but k=1: the stable contract picks the lowest
        # index, not whichever one a partition happens to leave in front.
        scores = np.array([[1.0, 0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 1), [[5]])
        np.testing.assert_array_equal(top_k_indices(scores, 2), [[5, 6]])
        np.testing.assert_array_equal(top_k_indices(scores, 4), [[5, 6, 7, 0]])

    def test_heavily_tied_scores_match_stable_argsort(self):
        rng = np.random.default_rng(3)
        scores = rng.integers(-2, 3, size=(50, 12)).astype(np.float64)
        scores[rng.random(scores.shape) < 0.2] = -np.inf
        for k in range(1, 12):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            np.testing.assert_array_equal(top_k_indices(scores, k), expected)

    def test_handles_neg_inf(self):
        scores = np.array([[-np.inf, 2.0, -np.inf, 1.0]])
        np.testing.assert_array_equal(top_k_indices(scores, 3), [[1, 3, 0]])

    def test_one_dimensional_input(self):
        np.testing.assert_array_equal(top_k_indices(np.array([3.0, 9.0, 5.0]), 2),
                                      [1, 2])

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 3)), 0)

    def test_kth_largest_matches_sort(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(9, 23))
        for k in (1, 5, 23):
            np.testing.assert_array_equal(kth_largest(values, k),
                                          np.sort(values, axis=1)[:, -k])

    def test_kth_largest_validates_k(self):
        with pytest.raises(ValueError):
            kth_largest(np.zeros((2, 3)), 4)


def _toy_trajectory():
    """Two samples: s0 perturbs cols 3, 1, 4; s1 perturbs cols 0, 2."""
    recorder = TrajectoryRecorder()
    recorder.begin(theta=0.5, budget=3, n_samples=2, n_features=5,
                   early_stop=True, features_per_step=1)
    recorder.record_step(0, [0, 1], [3, 0], [0.0, 0.2], [0.5, 0.7])
    recorder.record_evasions([1])
    recorder.record_step(1, [0, 1], [1, 2], [0.1, 0.0], [0.6, 0.5])
    recorder.record_step(2, [0], [4], [0.4], [0.9])
    return recorder.trajectory


class TestTrajectoryRecorder:
    def test_single_use(self):
        recorder = TrajectoryRecorder()
        recorder.begin(theta=0.1, budget=1, n_samples=1, n_features=2,
                       early_stop=True, features_per_step=1)
        with pytest.raises(AttackError):
            recorder.begin(theta=0.1, budget=1, n_samples=1, n_features=2,
                           early_stop=True, features_per_step=1)

    def test_record_before_begin_rejected(self):
        recorder = TrajectoryRecorder()
        with pytest.raises(AttackError):
            recorder.record_step(0, [0], [0], [0.0], [0.1])
        with pytest.raises(AttackError):
            recorder.record_evasions([0])
        with pytest.raises(AttackError):
            _ = recorder.trajectory

    def test_empty_run_yields_empty_trajectory(self):
        recorder = TrajectoryRecorder()
        recorder.begin(theta=0.1, budget=0, n_samples=3, n_features=4,
                       early_stop=True, features_per_step=1)
        trajectory = recorder.trajectory
        assert trajectory.n_events == 0
        np.testing.assert_array_equal(trajectory.first_evaded_at, [-1, -1, -1])
        original = np.zeros((3, 4))
        np.testing.assert_array_equal(trajectory.materialize(original, 0), original)

    def test_first_evasion_counts_prior_perturbations(self):
        trajectory = _toy_trajectory()
        # Sample 1 was observed evading after its first perturbation; sample 0
        # never evaded inside the loop.
        np.testing.assert_array_equal(trajectory.first_evaded_at, [-1, 1])

    def test_repeated_evasion_keeps_first_observation(self):
        recorder = TrajectoryRecorder()
        recorder.begin(theta=0.5, budget=3, n_samples=1, n_features=4,
                       early_stop=False, features_per_step=1)
        recorder.record_step(0, [0], [0], [0.0], [0.5])
        recorder.record_evasions([0])
        recorder.record_step(1, [0], [1], [0.0], [0.5])
        recorder.record_evasions([0])
        np.testing.assert_array_equal(recorder.trajectory.first_evaded_at, [1])


class TestJsmaTrajectory:
    def test_sequence_positions_per_sample(self):
        trajectory = _toy_trajectory()
        np.testing.assert_array_equal(trajectory.sequence_positions(),
                                      [0, 0, 1, 1, 2])

    def test_perturbation_counts(self):
        trajectory = _toy_trajectory()
        np.testing.assert_array_equal(trajectory.perturbation_counts(), [3, 2])
        np.testing.assert_array_equal(trajectory.perturbation_counts(1), [1, 1])
        np.testing.assert_array_equal(trajectory.perturbation_counts(0), [0, 0])

    def test_materialize_slices_per_sample_prefixes(self):
        trajectory = _toy_trajectory()
        original = np.array([[0.0, 0.1, 0.0, 0.0, 0.4],
                             [0.2, 0.0, 0.0, 0.0, 0.0]])
        at_1 = trajectory.materialize(original, 1)
        np.testing.assert_array_equal(at_1, [[0.0, 0.1, 0.0, 0.5, 0.4],
                                             [0.7, 0.0, 0.0, 0.0, 0.0]])
        at_2 = trajectory.materialize(original, 2)
        np.testing.assert_array_equal(at_2, [[0.0, 0.6, 0.0, 0.5, 0.4],
                                             [0.7, 0.0, 0.5, 0.0, 0.0]])
        at_3 = trajectory.materialize(original, 3)
        assert at_3[0, 4] == 0.9

    def test_materialize_validates_budget_and_shape(self):
        trajectory = _toy_trajectory()
        original = np.zeros((2, 5))
        with pytest.raises(AttackError):
            trajectory.materialize(original, 4)
        with pytest.raises(AttackError):
            trajectory.materialize(original, -1)
        with pytest.raises(AttackError):
            trajectory.materialize(np.zeros((3, 5)), 1)

    def test_materialize_grid(self):
        trajectory = _toy_trajectory()
        original = np.zeros((2, 5))
        grid = trajectory.materialize_grid(original, [0, 2])
        assert len(grid) == 2
        np.testing.assert_array_equal(grid[0], original)


class TestInstrumentedJsmaRun:
    """The recorder hook on JsmaAttack.run, against real attack runs."""

    def _attack(self, network, gamma, **kwargs):
        constraints = PerturbationConstraints(theta=0.1, gamma=gamma)
        return JsmaAttack(network, constraints=constraints, **kwargs)

    def test_recording_does_not_change_the_result(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        plain = self._attack(network, 0.02).run(tiny_malware.features)
        recorder = TrajectoryRecorder()
        recorded = self._attack(network, 0.02).run(tiny_malware.features,
                                                   recorder=recorder)
        np.testing.assert_array_equal(plain.adversarial, recorded.adversarial)
        np.testing.assert_array_equal(plain.iterations, recorded.iterations)

    def test_full_budget_materialization_matches_run(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        recorder = TrajectoryRecorder()
        result = self._attack(network, 0.03).run(tiny_malware.features,
                                                 recorder=recorder)
        trajectory = recorder.trajectory
        rebuilt = trajectory.materialize(result.original, trajectory.budget)
        np.testing.assert_array_equal(rebuilt, result.adversarial)

    def test_prefix_property_against_fresh_runs(self, tiny_context, tiny_malware):
        """Slicing the full-budget log reproduces every smaller-budget run."""
        network = tiny_context.target_model.network
        n_features = tiny_malware.features.shape[1]
        recorder = TrajectoryRecorder()
        self._attack(network, 15 / n_features).run(tiny_malware.features,
                                                   recorder=recorder)
        trajectory = recorder.trajectory
        for budget in (0, 1, 4, 9):
            direct = self._attack(network, budget / n_features).run(
                tiny_malware.features)
            sliced = trajectory.materialize(direct.original, budget)
            np.testing.assert_array_equal(sliced, direct.adversarial)

    def test_prefix_property_with_features_per_step(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        n_features = tiny_malware.features.shape[1]
        recorder = TrajectoryRecorder()
        self._attack(network, 14 / n_features, features_per_step=4,
                     early_stop=False).run(tiny_malware.features,
                                           recorder=recorder)
        trajectory = recorder.trajectory
        assert trajectory.features_per_step == 4
        for budget in (3, 7, 10):
            direct = self._attack(network, budget / n_features,
                                  features_per_step=4, early_stop=False).run(
                tiny_malware.features)
            sliced = trajectory.materialize(direct.original, budget)
            np.testing.assert_array_equal(sliced, direct.adversarial)

    def test_recorded_counts_match_iterations(self, tiny_context, tiny_malware):
        network = tiny_context.target_model.network
        recorder = TrajectoryRecorder()
        result = self._attack(network, 0.03).run(tiny_malware.features,
                                                 recorder=recorder)
        np.testing.assert_array_equal(recorder.trajectory.perturbation_counts(),
                                      result.iterations)

    def test_evasion_flags_recorded_without_early_stop(self, tiny_context,
                                                       tiny_malware):
        """early_stop=False still records first-evasion observations."""
        network = tiny_context.target_model.network
        recorder = TrajectoryRecorder()
        result = self._attack(network, 0.03, early_stop=False).run(
            tiny_malware.features, recorder=recorder)
        first = recorder.trajectory.first_evaded_at
        assert first.shape == (result.n_samples,)
        # At full budget most tiny-scale samples evade; the flags must mark
        # at least those that the final predictions say evaded mid-run.
        assert np.any(first >= 0)
        assert first.max() <= recorder.trajectory.budget
