"""Tests for the multi-process serving fleet (repro.parallel.fleet)."""

import pytest

from repro.exceptions import ParallelError
from repro.parallel import WorkerFleet
from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix
from repro.serving.service import ScoringRequest


@pytest.fixture(scope="module")
def tiny_servable(tiny_context):
    return ModelRegistry().get("target", context=tiny_context)


@pytest.fixture(scope="module")
def malware_rows(tiny_context):
    return tiny_context.attack_malware.features[:32]


class TestFleetReplay:
    def test_verdicts_match_single_service(self, tiny_context, tiny_servable,
                                           malware_rows):
        single = ScoringService(tiny_servable)
        baseline = single.score_many(list(malware_rows))
        fleet = WorkerFleet(n_workers=2, context=tiny_context,
                            max_batch_size=8)
        verdicts, report = fleet.score_stream(list(malware_rows))
        assert len(verdicts) == len(baseline)
        # Every replica serves the same versioned bundle: probabilities,
        # labels and provenance are identical — only latency differs.
        for ours, theirs in zip(verdicts, baseline):
            assert ours.malware_probability == theirs.malware_probability
            assert ours.label == theirs.label
            assert ours.model_version == theirs.model_version
        assert report.n_workers == 2
        assert report.throughput.n_requests == len(malware_rows)

    def test_merge_is_submission_ordered(self, tiny_context, malware_rows):
        requests = [ScoringRequest(request_id=f"row-{index:04d}", payload=row)
                    for index, row in enumerate(malware_rows)]
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=4)
        verdicts, _ = fleet.score_stream(requests)
        assert [verdict.request_id for verdict in verdicts] == \
               [request.request_id for request in requests]

    def test_raw_payload_ids_are_unique_across_workers(self, tiny_context,
                                                       malware_rows):
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=4)
        verdicts, _ = fleet.score_stream(list(malware_rows[:10]))
        ids = [verdict.request_id for verdict in verdicts]
        assert len(set(ids)) == len(ids)

    def test_per_worker_stats_cover_every_request(self, tiny_context,
                                                  malware_rows):
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=4)
        verdicts, report = fleet.score_stream(list(malware_rows))
        assert sum(worker["n_requests"] for worker in report.per_worker) == \
               len(verdicts)
        assert all(worker["n_batches"] >= 1 or worker["n_requests"] == 0
                   for worker in report.per_worker)
        assert report.throughput.p99_ms >= report.throughput.p50_ms
        payload = report.as_dict()
        assert payload["n_workers"] == 2
        assert "fleet: 2 workers" in report.render()

    def test_mixed_traffic_stream(self, tiny_context):
        generator = LoadGenerator(tiny_context,
                                  mix=TrafficMix(clean=0.5, malware=0.4,
                                                 adversarial=0.1),
                                  seed=5)
        requests = generator.generate(24)
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=8)
        verdicts, _ = fleet.score_stream(requests)
        assert [v.request_id for v in verdicts] == [r.request_id for r in requests]

    def test_empty_stream_short_circuits(self, tiny_context):
        fleet = WorkerFleet(n_workers=2, context=tiny_context)
        verdicts, report = fleet.score_stream([])
        assert verdicts == []
        assert report.throughput.n_requests == 0

    def test_fleet_is_restartable(self, tiny_context, malware_rows):
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=4)
        first, _ = fleet.score_stream(list(malware_rows[:6]))
        second, _ = fleet.score_stream(list(malware_rows[:6]))
        assert [v.malware_probability for v in first] == \
               [v.malware_probability for v in second]

    def test_paced_replay_completes(self, tiny_context, malware_rows):
        fleet = WorkerFleet(n_workers=2, context=tiny_context, max_batch_size=4,
                            max_delay_ms=1.0)
        verdicts, report = fleet.score_stream(list(malware_rows[:8]),
                                              rate_per_s=2000.0, seed=3)
        assert len(verdicts) == 8
        assert report.throughput.n_requests == 8

    def test_close_is_idempotent(self, tiny_context):
        fleet = WorkerFleet(n_workers=2, context=tiny_context)
        fleet.close()
        with fleet:
            pass
        fleet.close()

    def test_close_releases_processes_and_queues(self, tiny_context):
        fleet = WorkerFleet(n_workers=2, context=tiny_context)
        fleet.start()
        processes = list(fleet._processes.values())
        fleet.close()
        assert fleet._processes == {}
        assert fleet._task_queue is None and fleet._result_queue is None
        assert all(not process.is_alive() for process in processes)

    def test_close_returns_within_bound_after_worker_death(self, tiny_context):
        import time

        # Regression: a replica that died without draining its queues used
        # to leave close() joining forever on the feeder thread.  close()
        # must return within its grace budget and leak nothing.
        fleet = WorkerFleet(n_workers=2, context=tiny_context)
        fleet.start()
        victim = next(iter(fleet._processes.values()))
        victim.kill()
        victim.join(timeout=5.0)
        started = time.monotonic()
        fleet.close(grace_s=5.0)
        assert time.monotonic() - started < 10.0
        assert fleet._processes == {}
        assert fleet._task_queue is None and fleet._result_queue is None
        # The fleet is restartable after the forced teardown.
        verdicts, _ = fleet.score_stream([ScoringRequest(
            request_id="after-close",
            payload=tiny_context.attack_malware.features[0])])
        assert len(verdicts) == 1


class TestFleetConfig:
    def test_invalid_worker_count_rejected(self, tiny_context):
        with pytest.raises(ParallelError):
            WorkerFleet(n_workers=-2, context=tiny_context)

    def test_defended_fleet_matches_defended_service(self, tiny_context,
                                                     malware_rows):
        from repro.scenarios.registry import build_defense

        detector = build_defense("feature_squeezing", tiny_context)
        servable = ModelRegistry().get("target", context=tiny_context)
        single = ScoringService(servable, detector=detector)
        baseline = single.score_many(list(malware_rows[:12]))
        fleet = WorkerFleet(n_workers=2, defense="feature_squeezing",
                            context=tiny_context, max_batch_size=4)
        verdicts, _ = fleet.score_stream(list(malware_rows[:12]))
        assert [v.label for v in verdicts] == [v.label for v in baseline]
        assert all(v.defense == baseline[0].defense for v in verdicts)
