"""Tests for the 491-API catalog (Table III alignment)."""

import pytest

from repro.apilog.api_catalog import (
    TABLE_III_EXCERPT,
    TABLE_III_START_INDEX,
    ApiCatalog,
    build_catalog,
    default_catalog,
)
from repro.config import N_FEATURES
from repro.exceptions import ConfigurationError


class TestCanonicalCatalog:
    def test_has_491_entries(self):
        assert len(default_catalog()) == N_FEATURES

    def test_names_are_sorted(self):
        names = list(default_catalog().names)
        assert names == sorted(names)

    def test_names_are_unique(self):
        names = default_catalog().names
        assert len(names) == len(set(names))

    def test_names_are_lowercase(self):
        assert all(name == name.lower() for name in default_catalog())

    def test_table3_excerpt_matches_paper_verbatim(self):
        catalog = default_catalog()
        excerpt = catalog.excerpt(TABLE_III_START_INDEX,
                                  TABLE_III_START_INDEX + len(TABLE_III_EXCERPT))
        assert tuple(name for _, name in excerpt) == TABLE_III_EXCERPT

    def test_waitmessage_is_at_index_475(self):
        assert default_catalog().name_of(475) == "waitmessage"

    def test_writeprofilestringa_is_at_index_484(self):
        assert default_catalog().name_of(484) == "writeprofilestringa"

    def test_known_malware_apis_present(self):
        catalog = default_catalog()
        for api in ("writeprocessmemory", "createremotethread", "virtualallocex",
                    "winexec", "writefile"):
            assert api in catalog

    def test_build_is_deterministic(self):
        assert build_catalog().names == build_catalog().names

    def test_default_catalog_is_cached(self):
        assert default_catalog() is default_catalog()


class TestCatalogLookups:
    def test_index_of_round_trips(self):
        catalog = default_catalog()
        for index in (0, 100, 475, 490):
            assert catalog.index_of(catalog.name_of(index)) == index

    def test_index_of_is_case_insensitive(self):
        catalog = default_catalog()
        assert catalog.index_of("WriteProcessMemory") == catalog.index_of("writeprocessmemory")

    def test_index_of_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            default_catalog().index_of("notarealapi123")

    def test_monitored_predicate(self):
        catalog = default_catalog()
        assert catalog.monitored("writefile")
        assert not catalog.monitored("unmonitored_api")

    def test_contains_operator(self):
        assert "writefile" in default_catalog()
        assert "unmonitored_api" not in default_catalog()

    def test_indices_of_skips_unknown(self):
        catalog = default_catalog()
        indices = catalog.indices_of(["writefile", "unmonitored_api", "winexec"])
        assert len(indices) == 2

    def test_iteration_yields_all_names(self):
        catalog = default_catalog()
        assert len(list(catalog)) == len(catalog)


class TestCatalogConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ApiCatalog(("a", "a", "b"))

    def test_unsorted_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ApiCatalog(("b", "a"))

    def test_reduced_catalog_size(self):
        small = build_catalog(n_features=64)
        assert len(small) == 64

    def test_reduced_catalog_is_sorted_and_unique(self):
        small = build_catalog(n_features=100)
        names = list(small.names)
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_oversized_catalog_request_raises(self):
        with pytest.raises(ConfigurationError):
            build_catalog(n_features=10_000)
