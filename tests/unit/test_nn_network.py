"""Tests for the NeuralNetwork container (forward, gradients, persistence)."""

import numpy as np
import pytest

from repro.exceptions import SerializationError, ShapeError
from repro.nn.activations import softmax
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import Adam


class TestConstruction:
    def test_mlp_layer_sizes(self, small_mlp):
        assert small_mlp.layer_sizes == [12, 16, 8, 2]

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ShapeError):
            NeuralNetwork.mlp([5])

    def test_mlp_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            NeuralNetwork.mlp([4, 2], activation="swish")

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ShapeError):
            NeuralNetwork([])

    def test_n_parameters_counts_weights_and_biases(self):
        network = NeuralNetwork.mlp([4, 3, 2], random_state=0)
        expected = 4 * 3 + 3 + 3 * 2 + 2
        assert network.n_parameters() == expected

    def test_input_dim(self, small_mlp):
        assert small_mlp.input_dim == 12

    def test_seeded_construction_is_deterministic(self):
        a = NeuralNetwork.mlp([6, 4, 2], random_state=5)
        b = NeuralNetwork.mlp([6, 4, 2], random_state=5)
        x = np.random.default_rng(0).random((3, 6))
        np.testing.assert_allclose(a.predict_logits(x), b.predict_logits(x))

    def test_clone_is_independent(self, small_mlp):
        clone = small_mlp.clone()
        clone.parameters()[0].value += 1.0
        assert not np.allclose(clone.parameters()[0].value,
                               small_mlp.parameters()[0].value)


class TestPrediction:
    def test_logits_shape(self, small_mlp):
        assert small_mlp.predict_logits(np.zeros((5, 12))).shape == (5, 2)

    def test_1d_input_is_promoted(self, small_mlp):
        assert small_mlp.predict_logits(np.zeros(12)).shape == (1, 2)

    def test_predict_proba_rows_sum_to_one(self, small_mlp):
        probs = small_mlp.predict_proba(np.random.default_rng(0).random((6, 12)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_is_argmax_of_proba(self, small_mlp):
        x = np.random.default_rng(1).random((8, 12))
        np.testing.assert_array_equal(small_mlp.predict(x),
                                      np.argmax(small_mlp.predict_proba(x), axis=1))

    def test_malware_score_is_class1_probability(self, small_mlp):
        x = np.random.default_rng(2).random((4, 12))
        np.testing.assert_allclose(small_mlp.malware_score(x),
                                   small_mlp.predict_proba(x)[:, 1])

    def test_temperature_override_flattens_probabilities(self, small_mlp):
        x = np.random.default_rng(3).random((4, 12))
        sharp = small_mlp.predict_proba(x, temperature=1.0)
        flat = small_mlp.predict_proba(x, temperature=50.0)
        assert np.abs(flat - 0.5).max() < np.abs(sharp - 0.5).max() + 1e-12


class TestInputGradients:
    def test_class_gradients_shape(self, small_mlp):
        x = np.random.default_rng(0).random((3, 12))
        assert small_mlp.class_gradients(x).shape == (3, 2, 12)

    def test_class_gradients_match_finite_differences(self):
        from repro.nn.engine import use_dtype

        # Finite differences at eps=1e-6 need float64 math regardless of the
        # suite-wide engine dtype (REPRO_DTYPE).
        with use_dtype("float64"):
            network = NeuralNetwork.mlp([6, 5, 2], activation="tanh", random_state=0)
        rng = np.random.default_rng(4)
        x = rng.random((2, 6))
        jacobian = network.class_gradients(x)
        eps = 1e-6
        for sample in range(2):
            for class_index in range(2):
                for feature in range(6):
                    plus = x.copy(); plus[sample, feature] += eps
                    minus = x.copy(); minus[sample, feature] -= eps
                    numeric = (network.predict_proba(plus)[sample, class_index]
                               - network.predict_proba(minus)[sample, class_index]) / (2 * eps)
                    assert jacobian[sample, class_index, feature] == pytest.approx(
                        numeric, rel=1e-3, abs=1e-7)

    def test_binary_class_gradients_are_opposite(self, small_mlp):
        x = np.random.default_rng(5).random((4, 12))
        jacobian = small_mlp.class_gradients(x)
        np.testing.assert_allclose(jacobian[:, 0, :], -jacobian[:, 1, :], atol=1e-12)

    def test_class_gradients_leave_parameter_grads_clean(self, small_mlp):
        small_mlp.class_gradients(np.random.default_rng(0).random((3, 12)))
        assert all(np.all(p.grad == 0.0) for p in small_mlp.parameters())

    def test_loss_input_gradient_matches_finite_differences(self):
        from repro.nn.engine import use_dtype

        with use_dtype("float64"):
            network = NeuralNetwork.mlp([5, 4, 2], activation="sigmoid", random_state=1)
        rng = np.random.default_rng(6)
        x = rng.random((3, 5))
        labels = np.array([0, 1, 0])
        grad = network.loss_input_gradient(x, labels)
        loss = SoftmaxCrossEntropy()
        eps = 1e-6
        for (i, j) in [(0, 0), (1, 3), (2, 4)]:
            plus = x.copy(); plus[i, j] += eps
            minus = x.copy(); minus[i, j] -= eps
            numeric = (loss.forward(network.predict_logits(plus), labels)
                       - loss.forward(network.predict_logits(minus), labels)) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-9)


class TestTrainStep:
    def test_train_step_reduces_loss(self, toy_classification):
        x, y = toy_classification
        network = NeuralNetwork.mlp([12, 16, 2], random_state=0)
        loss = SoftmaxCrossEntropy()
        optimizer = Adam(learning_rate=0.01)
        initial = loss.forward(network.predict_logits(x), y)
        for _ in range(30):
            network.train_step(x, y, loss, optimizer)
        final = loss.forward(network.predict_logits(x), y)
        assert final < initial


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, small_mlp):
        x = np.random.default_rng(0).random((5, 12))
        small_mlp.save(tmp_path / "model")
        restored = NeuralNetwork.load(tmp_path / "model")
        np.testing.assert_allclose(restored.predict_logits(x),
                                   small_mlp.predict_logits(x))

    def test_load_preserves_architecture_metadata(self, tmp_path):
        network = NeuralNetwork.mlp([7, 5, 2], dropout=0.2, temperature=3.0,
                                    name="custom", random_state=0)
        network.save(tmp_path / "m")
        restored = NeuralNetwork.load(tmp_path / "m")
        assert restored.layer_sizes == [7, 5, 2]
        assert restored.temperature == 3.0
        assert restored.name == "custom"

    def test_load_missing_bundle_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            NeuralNetwork.load(tmp_path / "missing")

    def test_load_with_corrupted_weight_shape_raises(self, tmp_path, small_mlp):
        path = small_mlp.save(tmp_path / "model")
        arrays = dict(np.load(path / "arrays.npz"))
        first_key = sorted(arrays)[0]
        arrays[first_key] = np.zeros((1, 1))
        np.savez_compressed(path / "arrays.npz", **arrays)
        with pytest.raises(SerializationError):
            NeuralNetwork.load(path)
