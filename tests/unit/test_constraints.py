"""Tests for the perturbation constraint set (the add-only threat model)."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.exceptions import AttackError


class TestConstruction:
    def test_defaults_match_paper_operating_point(self):
        constraints = PerturbationConstraints()
        assert constraints.theta == pytest.approx(0.1)
        assert constraints.gamma == pytest.approx(0.025)
        assert constraints.add_only

    def test_negative_theta_rejected(self):
        with pytest.raises(AttackError):
            PerturbationConstraints(theta=-0.1)

    def test_gamma_above_one_rejected(self):
        with pytest.raises(Exception):
            PerturbationConstraints(gamma=1.5)

    def test_invalid_box_rejected(self):
        with pytest.raises(AttackError):
            PerturbationConstraints(clip_min=1.0, clip_max=0.0)

    def test_empty_feature_mask_rejected(self):
        with pytest.raises(AttackError):
            PerturbationConstraints(feature_mask=np.zeros(5, dtype=bool))


class TestBudget:
    def test_paper_gamma_0025_is_12_features(self):
        assert PerturbationConstraints(gamma=0.025).max_features(491) == 12

    def test_paper_gamma_0005_is_2_features(self):
        assert PerturbationConstraints(gamma=0.005).max_features(491) == 2

    def test_gamma_zero_is_zero_features(self):
        assert PerturbationConstraints(gamma=0.0).max_features(491) == 0

    def test_modifiable_mask_defaults_to_all(self):
        assert PerturbationConstraints().modifiable_mask(10).all()

    def test_modifiable_mask_dimension_checked(self):
        constraints = PerturbationConstraints(feature_mask=np.ones(5, dtype=bool))
        with pytest.raises(AttackError):
            constraints.modifiable_mask(6)


class TestProjection:
    def test_project_enforces_box(self):
        constraints = PerturbationConstraints()
        original = np.zeros((1, 4))
        adversarial = np.array([[1.5, -0.5, 0.3, 0.9]])
        projected = constraints.project(adversarial, original)
        assert projected.min() >= 0.0
        assert projected.max() <= 1.0

    def test_project_enforces_add_only(self):
        constraints = PerturbationConstraints(add_only=True)
        original = np.full((1, 3), 0.5)
        adversarial = np.array([[0.2, 0.5, 0.9]])
        projected = constraints.project(adversarial, original)
        np.testing.assert_allclose(projected, [[0.5, 0.5, 0.9]])

    def test_project_respects_feature_mask(self):
        mask = np.array([True, False, True])
        constraints = PerturbationConstraints(feature_mask=mask)
        original = np.zeros((1, 3))
        adversarial = np.full((1, 3), 0.4)
        projected = constraints.project(adversarial, original)
        np.testing.assert_allclose(projected, [[0.4, 0.0, 0.4]])

    def test_project_without_add_only_allows_decrease(self):
        constraints = PerturbationConstraints(add_only=False)
        original = np.full((1, 2), 0.5)
        adversarial = np.array([[0.2, 0.7]])
        np.testing.assert_allclose(constraints.project(adversarial, original),
                                   adversarial)

    def test_project_shape_mismatch_rejected(self):
        constraints = PerturbationConstraints()
        with pytest.raises(AttackError):
            constraints.project(np.zeros((1, 3)), np.zeros((1, 4)))


class TestFeasibility:
    def test_untouched_input_is_feasible(self):
        constraints = PerturbationConstraints()
        x = np.random.default_rng(0).random((3, 10))
        assert constraints.is_feasible(x, x)

    def test_small_addition_is_feasible(self):
        constraints = PerturbationConstraints(theta=0.1, gamma=0.5)
        original = np.zeros((1, 10))
        adversarial = original.copy()
        adversarial[0, 3] = 0.1
        assert constraints.is_feasible(adversarial, original)

    def test_feature_removal_is_infeasible(self):
        constraints = PerturbationConstraints()
        original = np.full((1, 10), 0.5)
        adversarial = original.copy()
        adversarial[0, 0] = 0.3
        assert not constraints.is_feasible(adversarial, original)

    def test_budget_violation_is_infeasible(self):
        constraints = PerturbationConstraints(gamma=0.1)  # 1 feature out of 10
        original = np.zeros((1, 10))
        adversarial = original.copy()
        adversarial[0, :3] = 0.1
        assert not constraints.is_feasible(adversarial, original)

    def test_out_of_box_is_infeasible(self):
        constraints = PerturbationConstraints()
        original = np.zeros((1, 5))
        adversarial = original.copy()
        adversarial[0, 0] = 1.2
        assert not constraints.is_feasible(adversarial, original)

    def test_masked_feature_change_is_infeasible(self):
        mask = np.array([True, False, True, True])
        constraints = PerturbationConstraints(feature_mask=mask, gamma=1.0)
        original = np.zeros((1, 4))
        adversarial = original.copy()
        adversarial[0, 1] = 0.2
        assert not constraints.is_feasible(adversarial, original)


class TestWithStrength:
    def test_with_strength_overrides_only_requested(self):
        base = PerturbationConstraints(theta=0.1, gamma=0.025, add_only=True)
        changed = base.with_strength(gamma=0.01)
        assert changed.gamma == pytest.approx(0.01)
        assert changed.theta == pytest.approx(0.1)
        assert changed.add_only
        assert base.gamma == pytest.approx(0.025)
