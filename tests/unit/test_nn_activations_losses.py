"""Tests for activations, softmax (with temperature) and the losses."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.activations import (
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
    softmax,
    softmax_input_gradient,
)
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, one_hot


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_is_shift_invariant(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_handles_extreme_logits_without_overflow(self):
        probs = softmax(np.array([[1e4, -1e4]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_high_temperature_flattens_distribution(self):
        logits = np.array([[4.0, 0.0]])
        sharp = softmax(logits, temperature=1.0)
        flat = softmax(logits, temperature=50.0)
        assert flat[0, 0] < sharp[0, 0]
        assert flat[0, 0] == pytest.approx(0.5, abs=0.05)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            softmax(np.zeros((1, 2)), temperature=0.0)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(4, 2))
        temperature = 2.0
        probs = softmax(logits, temperature=temperature)
        grad = softmax_input_gradient(probs, class_index=0, temperature=temperature)
        eps = 1e-6
        for i in range(4):
            for j in range(2):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric = (softmax(plus, temperature=temperature)[i, 0]
                           - softmax(minus, temperature=temperature)[i, 0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks_negatives(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_leaky_relu_keeps_scaled_negatives(self):
        layer = LeakyReLU(0.1)
        out = layer.forward(np.array([[-2.0, 2.0]]))
        np.testing.assert_allclose(out, [[-0.2, 2.0]])

    def test_sigmoid_range_and_midpoint(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-50.0, 0.0, 50.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("activation_cls", [ReLU, Sigmoid, Tanh])
    def test_backward_matches_finite_differences(self, activation_cls):
        rng = np.random.default_rng(0)
        layer = activation_cls()
        x = rng.normal(size=(3, 4))
        upstream = rng.normal(size=(3, 4))
        layer.forward(x)
        grad = layer.backward(upstream)
        eps = 1e-6
        for (i, j) in [(0, 0), (1, 2), (2, 3)]:
            plus = x.copy(); plus[i, j] += eps
            minus = x.copy(); minus[i, j] -= eps
            numeric = ((layer.forward(plus) * upstream).sum()
                       - (layer.forward(minus) * upstream).sum()) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_get_activation_by_name(self):
        assert isinstance(get_activation("relu"), ReLU)

    def test_get_activation_unknown_raises(self):
        with pytest.raises(ValueError):
            get_activation("swish")

    def test_activations_preserve_dimension(self):
        assert ReLU().output_dim(17) == 17
        assert Tanh().output_dim(4) == 4


class TestOneHot:
    def test_encodes_labels(self):
        encoded = one_hot(np.array([0, 1, 1]), 2)
        np.testing.assert_array_equal(encoded, [[1, 0], [0, 1], [0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 2)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2)), 2)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-3

    def test_uniform_prediction_loss_is_log2(self):
        loss = SoftmaxCrossEntropy()
        assert loss.forward(np.zeros((4, 2)), np.array([0, 1, 0, 1])) == pytest.approx(np.log(2))

    def test_soft_targets_accepted(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((2, 2)), np.array([[0.5, 0.5], [0.9, 0.1]]))
        assert np.isfinite(value)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 2))
        labels = np.array([0, 1, 1, 0, 1])
        loss = SoftmaxCrossEntropy(temperature=1.0)
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for (i, j) in [(0, 0), (2, 1), (4, 0)]:
            plus = logits.copy(); plus[i, j] += eps
            minus = logits.copy(); minus[i, j] -= eps
            numeric = (SoftmaxCrossEntropy().forward(plus, labels)
                       - SoftmaxCrossEntropy().forward(minus, labels)) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_gradient_with_temperature_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 2))
        labels = np.array([1, 0, 1])
        temperature = 10.0
        loss = SoftmaxCrossEntropy(temperature=temperature)
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-5
        probe = SoftmaxCrossEntropy(temperature=temperature)
        for (i, j) in [(0, 0), (1, 1), (2, 0)]:
            plus = logits.copy(); plus[i, j] += eps
            minus = logits.copy(); minus[i, j] -= eps
            numeric = (probe.forward(plus, labels) - probe.forward(minus, labels)) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-8)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_target_shape_mismatch_raises(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 2)), np.array([0, 1, 1]))

    def test_label_smoothing_increases_confident_loss(self):
        logits = np.array([[12.0, -12.0]])
        plain = SoftmaxCrossEntropy().forward(logits, np.array([0]))
        smoothed = SoftmaxCrossEntropy(label_smoothing=0.1).forward(logits, np.array([0]))
        assert smoothed > plain

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(temperature=-1.0)


class TestMeanSquaredError:
    def test_zero_for_identical_inputs(self):
        loss = MeanSquaredError()
        x = np.ones((3, 2))
        assert loss.forward(x, x) == 0.0

    def test_value_matches_definition(self):
        loss = MeanSquaredError()
        assert loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == pytest.approx(2.5)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        outputs = rng.normal(size=(3, 2))
        targets = rng.normal(size=(3, 2))
        loss = MeanSquaredError()
        loss.forward(outputs, targets)
        grad = loss.backward()
        eps = 1e-6
        plus = outputs.copy(); plus[1, 1] += eps
        minus = outputs.copy(); minus[1, 1] -= eps
        numeric = (MeanSquaredError().forward(plus, targets)
                   - MeanSquaredError().forward(minus, targets)) / (2 * eps)
        assert grad[1, 1] == pytest.approx(numeric, rel=1e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))
