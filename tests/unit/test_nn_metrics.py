"""Tests for classification metrics (confusion rates, detection rate, ROC)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    detection_rate,
    rates_from_confusion,
    roc_auc,
    roc_curve,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 1])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1]), np.array([0, 0])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_layout_true_rows_predicted_columns(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_total_count_preserved(self):
        y_true = np.array([0, 1, 1, 0, 1, 0])
        y_pred = np.array([1, 1, 0, 0, 1, 1])
        assert confusion_matrix(y_true, y_pred).sum() == 6

    def test_rejects_invalid_labels(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))


class TestRatesFromConfusion:
    def test_known_rates(self):
        # 10 malware: 8 detected; 10 clean: 9 correct.
        matrix = np.array([[9, 1], [2, 8]])
        rates = rates_from_confusion(matrix)
        assert rates["tpr"] == pytest.approx(0.8)
        assert rates["fnr"] == pytest.approx(0.2)
        assert rates["tnr"] == pytest.approx(0.9)
        assert rates["fpr"] == pytest.approx(0.1)

    def test_rates_sum_to_one_per_class(self):
        matrix = np.array([[7, 3], [4, 6]])
        rates = rates_from_confusion(matrix)
        assert rates["tpr"] + rates["fnr"] == pytest.approx(1.0)
        assert rates["tnr"] + rates["fpr"] == pytest.approx(1.0)

    def test_missing_positives_give_nan_tpr(self):
        matrix = np.array([[5, 1], [0, 0]])
        rates = rates_from_confusion(matrix)
        assert np.isnan(rates["tpr"])
        assert not np.isnan(rates["tnr"])

    def test_missing_negatives_give_nan_tnr(self):
        matrix = np.array([[0, 0], [1, 9]])
        rates = rates_from_confusion(matrix)
        assert np.isnan(rates["tnr"])
        assert rates["tpr"] == pytest.approx(0.9)

    def test_rejects_non_2x2(self):
        with pytest.raises(ShapeError):
            rates_from_confusion(np.zeros((3, 3)))


class TestDetectionRate:
    def test_all_detected(self):
        assert detection_rate(np.array([1, 1, 1])) == 1.0

    def test_none_detected(self):
        assert detection_rate(np.array([0, 0])) == 0.0

    def test_partial(self):
        assert detection_rate(np.array([1, 0, 1, 0])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            detection_rate(np.array([]))


class TestRoc:
    def test_perfect_separation_auc_is_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(y, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_is_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == pytest.approx(0.0)

    def test_random_scores_auc_is_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_starts_at_origin_and_ends_at_one_one(self):
        y = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.2, 0.6, 0.4, 0.8, 0.5])
        fpr, tpr, _ = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_curve_is_monotonic(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_single_class_raises(self):
        with pytest.raises(ShapeError):
            roc_curve(np.array([1, 1]), np.array([0.5, 0.6]))


class TestClassificationReport:
    def test_from_predictions(self):
        y_true = np.array([0, 0, 0, 1, 1, 1, 1, 1])
        y_pred = np.array([0, 0, 1, 1, 1, 1, 0, 1])
        report = ClassificationReport.from_predictions(y_true, y_pred)
        assert report.n_samples == 8
        assert report.tpr == pytest.approx(4 / 5)
        assert report.tnr == pytest.approx(2 / 3)
        assert report.accuracy == pytest.approx(6 / 8)

    def test_as_dict_round_trip(self):
        report = ClassificationReport.from_predictions(np.array([0, 1]), np.array([0, 1]))
        as_dict = report.as_dict()
        assert as_dict["tpr"] == 1.0
        assert as_dict["tnr"] == 1.0
        assert as_dict["n_samples"] == 2
