"""Tests for security curves, L2 distance analysis and table rendering."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.random_noise import RandomAdditionAttack
from repro.evaluation.distances import DistanceReport, l2_distance_report, mean_pairwise_l2, paired_l2
from repro.evaluation.reports import format_table, render_defense_table, render_security_curve
from repro.evaluation.security_curve import (
    PAPER_GAMMA_GRID,
    PAPER_THETA_GRID,
    gamma_sweep,
    paper_gamma_grid,
    paper_theta_grid,
    theta_sweep,
)
from repro.exceptions import AttackError, ShapeError


class TestPaperGrids:
    def test_gamma_grid_matches_figure3a(self):
        np.testing.assert_allclose(PAPER_GAMMA_GRID,
                                   [0.0, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03])

    def test_theta_grid_matches_figure3b(self):
        assert len(PAPER_THETA_GRID) == 13
        assert PAPER_THETA_GRID[0] == pytest.approx(0.0)
        assert PAPER_THETA_GRID[-1] == pytest.approx(0.15)

    def test_subsampled_grids_keep_endpoints(self):
        grid = paper_gamma_grid(4)
        assert grid[0] == pytest.approx(0.0)
        assert grid[-1] == pytest.approx(0.03)
        assert len(grid) == 4
        theta = paper_theta_grid(5)
        assert theta[-1] == pytest.approx(0.15)
        assert len(theta) == 5

    def test_oversampled_request_returns_full_grid(self):
        assert len(paper_gamma_grid(100)) == len(PAPER_GAMMA_GRID)


class TestSweeps:
    def _gamma_curve(self, context, malware, points=(0.0, 0.01, 0.02)):
        target = context.target_model
        return gamma_sweep(
            lambda constraints: JsmaAttack(target.network, constraints=constraints),
            malware.features, {"target": target.network},
            theta=0.1, gamma_values=points)

    def test_curve_has_one_point_per_strength(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware)
        assert len(curve.points) == 3
        assert curve.strengths() == [0.0, 0.01, 0.02]

    def test_zero_strength_matches_baseline(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware)
        baseline = tiny_context.target_model.detection_rate(tiny_malware.features)
        assert curve.points[0].detection_rates["target"] == pytest.approx(baseline)

    def test_detection_rates_decrease_overall(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware, points=(0.0, 0.03))
        rates = curve.detection_rates("target")
        assert rates[-1] < rates[0]

    def test_n_perturbed_features_tracks_gamma(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware)
        assert [p.n_perturbed_features for p in curve.points] == [0, 5, 10]

    def test_theta_sweep_fixes_gamma(self, tiny_context, tiny_malware):
        target = tiny_context.target_model
        curve = theta_sweep(
            lambda constraints: JsmaAttack(target.network, constraints=constraints),
            tiny_malware.features, {"target": target.network},
            gamma=0.01, theta_values=[0.0, 0.1])
        assert all(p.gamma == pytest.approx(0.01) for p in curve.points)
        assert curve.swept_parameter == "theta"

    def test_multiple_models_tracked(self, tiny_context, tiny_malware):
        target = tiny_context.target_model
        substitute = tiny_context.substitute_model
        curve = gamma_sweep(
            lambda constraints: JsmaAttack(substitute.network, constraints=constraints,
                                           early_stop=False),
            tiny_malware.features,
            {"substitute": substitute.network, "target": target.network},
            theta=0.1, gamma_values=[0.0, 0.02])
        assert set(curve.model_names()) == {"substitute", "target"}

    def test_as_rows_structure(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware)
        rows = curve.as_rows()
        assert len(rows) == 3
        assert "detection_rate[target]" in rows[0]

    def test_empty_model_dict_rejected(self, tiny_context, tiny_malware):
        with pytest.raises(AttackError):
            gamma_sweep(lambda c: JsmaAttack(tiny_context.target_model.network, c),
                        tiny_malware.features, {}, theta=0.1, gamma_values=[0.0])

    def test_minimum_detection_rate(self, tiny_context, tiny_malware):
        curve = self._gamma_curve(tiny_context, tiny_malware)
        assert curve.minimum_detection_rate("target") == min(curve.detection_rates("target"))


class TestDistances:
    def test_paired_l2_known_value(self):
        a = np.zeros((2, 3))
        b = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(paired_l2(a, b), [5.0, 0.0])

    def test_paired_l2_requires_same_rows(self):
        with pytest.raises(ShapeError):
            paired_l2(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_mean_pairwise_exact_small_case(self):
        a = np.array([[0.0], [1.0]])
        b = np.array([[0.0], [1.0]])
        # pairs: 0,1,1,0 -> mean 0.5
        assert mean_pairwise_l2(a, b) == pytest.approx(0.5)

    def test_mean_pairwise_sampling_close_to_exact(self):
        rng = np.random.default_rng(0)
        a = rng.random((60, 5))
        b = rng.random((50, 5))
        exact = mean_pairwise_l2(a, b, max_pairs=10**9)
        sampled = mean_pairwise_l2(a, b, max_pairs=500, random_state=0)
        assert sampled == pytest.approx(exact, rel=0.1)

    def test_distance_report_ordering_check(self):
        report = DistanceReport(theta=0.1, gamma=0.02, malware_to_adversarial=0.2,
                                malware_to_clean=0.5, clean_to_adversarial=0.6)
        assert report.ordering_holds()
        bad = DistanceReport(theta=0.1, gamma=0.02, malware_to_adversarial=0.9,
                             malware_to_clean=0.5, clean_to_adversarial=0.6)
        assert not bad.ordering_holds()

    def test_l2_distance_report_from_attack(self, tiny_context, tiny_malware):
        target = tiny_context.target_model
        clean = tiny_context.corpus.test.clean_only().features
        result = JsmaAttack(target.network,
                            PerturbationConstraints(theta=0.1, gamma=0.02)).run(
            tiny_malware.features)
        report = l2_distance_report(result.original, result.adversarial, clean,
                                    theta=0.1, gamma=0.02)
        assert report.malware_to_adversarial > 0.0
        assert report.malware_to_clean > report.malware_to_adversarial
        assert set(report.as_dict()) == {"theta", "gamma", "malware_to_adversarial",
                                         "malware_to_clean", "clean_to_adversarial"}


class TestReports:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "longheader"], [[1, 2.34567], ["xy", float("nan")]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "longheader" in lines[0]
        assert "2.346" in table
        assert "nan" in table

    def test_format_table_with_title(self):
        table = format_table(["c"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_render_defense_table_contains_all_rows(self):
        results = {
            "no_defense": {"clean": {"tpr": float("nan"), "tnr": 0.96},
                           "advex": {"tpr": 0.30, "tnr": float("nan")}},
            "adv_training": {"advex": {"tpr": 0.93, "tnr": float("nan")}},
        }
        rendered = render_defense_table(results)
        assert "no_defense" in rendered
        assert "adv_training" in rendered
        assert "0.930" in rendered

    def test_render_security_curve(self, tiny_context, tiny_malware):
        target = tiny_context.target_model
        curve = gamma_sweep(
            lambda constraints: RandomAdditionAttack(target.network, constraints,
                                                     random_state=0),
            tiny_malware.features, {"target": target.network},
            theta=0.1, gamma_values=[0.0, 0.01])
        rendered = render_security_curve(curve, title="control")
        assert "control" in rendered
        assert "detection[target]" in rendered
