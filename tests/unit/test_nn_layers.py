"""Tests for Dense / Dropout layers and Parameter."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.layers import Dense, Dropout, Parameter


class TestParameter:
    def test_grad_starts_at_zero(self):
        param = Parameter("w", np.ones((2, 3)))
        assert np.all(param.grad == 0.0)

    def test_zero_grad_resets(self):
        param = Parameter("w", np.ones((2, 2)))
        param.grad += 5.0
        param.zero_grad()
        assert np.all(param.grad == 0.0)

    def test_shape_property(self):
        assert Parameter("b", np.zeros(4)).shape == (4,)


class TestDenseForward:
    def test_output_shape(self):
        layer = Dense(5, 3, random_state=0)
        out = layer.forward(np.zeros((7, 5)))
        assert out.shape == (7, 3)

    def test_zero_input_returns_bias(self):
        layer = Dense(4, 2, random_state=0)
        layer.bias.value[:] = [1.0, -2.0]
        out = layer.forward(np.zeros((3, 4)))
        np.testing.assert_allclose(out, np.tile([1.0, -2.0], (3, 1)))

    def test_linear_in_input(self):
        layer = Dense(4, 2, random_state=0)
        x = np.random.default_rng(0).normal(size=(5, 4))
        np.testing.assert_allclose(layer.forward(2 * x) - layer.bias.value,
                                   2 * (layer.forward(x) - layer.bias.value))

    def test_rejects_wrong_input_dim(self):
        layer = Dense(4, 2, random_state=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5)))

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ShapeError):
            Dense(0, 2)

    def test_initialisation_is_seeded(self):
        a = Dense(6, 4, random_state=3).weight.value
        b = Dense(6, 4, random_state=3).weight.value
        np.testing.assert_array_equal(a, b)


class TestDenseBackward:
    def test_gradient_matches_finite_differences(self):
        from repro.nn.engine import use_dtype

        rng = np.random.default_rng(1)
        # Finite differences at eps=1e-6 need float64 math regardless of the
        # suite-wide engine dtype (REPRO_DTYPE).
        with use_dtype("float64"):
            layer = Dense(4, 3, random_state=0)
        x = rng.normal(size=(6, 4))
        upstream = rng.normal(size=(6, 3))

        layer.forward(x)
        grad_input = layer.backward(upstream)

        eps = 1e-6
        # weight gradient check (a couple of entries)
        for (i, j) in [(0, 0), (2, 1), (3, 2)]:
            original = layer.weight.value[i, j]
            layer.weight.value[i, j] = original + eps
            plus = float((layer.forward(x) * upstream).sum())
            layer.weight.value[i, j] = original - eps
            minus = float((layer.forward(x) * upstream).sum())
            layer.weight.value[i, j] = original
            numeric = (plus - minus) / (2 * eps)
            assert layer.weight.grad[i, j] == pytest.approx(numeric, rel=1e-4)

        # input gradient check
        for (i, j) in [(0, 0), (5, 3)]:
            perturbed = x.copy()
            perturbed[i, j] += eps
            plus = float((layer.forward(perturbed) * upstream).sum())
            perturbed[i, j] -= 2 * eps
            minus = float((layer.forward(perturbed) * upstream).sum())
            numeric = (plus - minus) / (2 * eps)
            assert grad_input[i, j] == pytest.approx(numeric, rel=1e-4)

    def test_bias_gradient_is_column_sum(self):
        layer = Dense(3, 2, random_state=0)
        upstream = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.forward(np.zeros((2, 3)))
        layer.backward(upstream)
        np.testing.assert_allclose(layer.bias.grad, [4.0, 6.0])

    def test_gradients_accumulate_across_backward_calls(self):
        layer = Dense(3, 2, random_state=0)
        x = np.ones((2, 3))
        upstream = np.ones((2, 2))
        layer.forward(x)
        layer.backward(upstream)
        first = layer.weight.grad.copy()
        layer.backward(upstream)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_backward_before_forward_raises(self):
        layer = Dense(3, 2, random_state=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameters_returns_weight_and_bias(self):
        layer = Dense(3, 2, random_state=0)
        names = [p.name for p in layer.parameters()]
        assert names == ["weight", "bias"]


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5, random_state=0)
        x = np.random.default_rng(0).normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some_units(self):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((10, 50))
        out = layer.forward(x, training=True)
        assert np.sum(out == 0.0) > 0

    def test_survivors_are_rescaled(self):
        layer = Dropout(0.5, random_state=0)
        out = layer.forward(np.ones((10, 50)), training=True)
        surviving = out[out != 0.0]
        np.testing.assert_allclose(surviving, 2.0)

    def test_expected_value_is_preserved(self):
        layer = Dropout(0.3, random_state=0)
        out = layer.forward(np.ones((200, 200)), training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_masks_gradient_consistently(self):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((5, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_zero_rate_is_identity_even_in_training(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_has_no_parameters(self):
        assert Dropout(0.2).parameters() == []
