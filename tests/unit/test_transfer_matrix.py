"""Tests for the cross-model transferability matrix."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.evaluation.transfer_matrix import TransferMatrix, transfer_matrix
from repro.exceptions import AttackError


@pytest.fixture(scope="module")
def matrix(request):
    context = request.getfixturevalue("tiny_context")
    models = {"target": context.target_model.network,
              "substitute": context.substitute_model.network}
    return transfer_matrix(models, context.attack_malware.features,
                           constraints=PerturbationConstraints(theta=0.1, gamma=0.025))


class TestTransferMatrixComputation:
    def test_matrix_covers_all_pairs(self, matrix):
        assert set(matrix.model_names) == {"target", "substitute"}
        for source in matrix.model_names:
            for victim in matrix.model_names:
                assert 0.0 <= matrix.rate(source, victim) <= 1.0

    def test_diagonal_is_whitebox_and_attacks_work(self, matrix):
        for name in matrix.model_names:
            assert matrix.whitebox_rate(name) < matrix.baseline_detection[name]

    def test_transfer_complements_detection(self, matrix):
        assert matrix.transfer_rate("substitute", "target") == pytest.approx(
            1.0 - matrix.rate("substitute", "target"))

    def test_transferred_attack_is_no_stronger_than_whitebox(self, matrix):
        # crafting against the victim itself is at least as strong as a
        # transferred attack (up to small noise)
        assert matrix.transfer_is_weaker_than_whitebox("substitute", "target", slack=0.1)

    def test_rows_and_render(self, matrix):
        rows = matrix.rows()
        assert len(rows) == 2
        rendered = matrix.render()
        assert "Transferability matrix" in rendered
        assert "no-attack baseline" in rendered

    def test_baselines_match_models(self, matrix, tiny_context):
        expected = tiny_context.target_model.detection_rate(
            tiny_context.attack_malware.features)
        assert matrix.baseline_detection["target"] == pytest.approx(expected)


class TestValidation:
    def test_empty_models_rejected(self, tiny_malware):
        with pytest.raises(AttackError):
            transfer_matrix({}, tiny_malware.features)

    def test_single_model_matrix(self, tiny_context, tiny_malware):
        matrix = transfer_matrix({"target": tiny_context.target_model.network},
                                 tiny_malware.features,
                                 constraints=PerturbationConstraints(theta=0.1, gamma=0.01))
        assert matrix.model_names == ["target"]
        assert matrix.whitebox_rate("target") <= matrix.baseline_detection["target"]
