"""Unit tests for experiment result objects and the paper reference values."""

import numpy as np
import pytest

from repro.experiments import paper_values
from repro.experiments.figure5_l2 import Figure5Result
from repro.experiments.live_greybox import LiveGreyBoxResult
from repro.attacks.live_greybox import LiveGreyBoxTrace
from repro.evaluation.distances import DistanceReport
from repro.experiments.table1_dataset import Table1Result
from repro.experiments.table3_features import Table3Result
from repro.apilog.api_catalog import TABLE_III_EXCERPT


class TestPaperValues:
    def test_table1_totals_are_consistent(self):
        for split in paper_values.TABLE_I.values():
            assert split["clean"] + split["malware"] == split["total"]

    def test_whitebox_operating_point(self):
        assert paper_values.WHITE_BOX["theta"] == pytest.approx(0.1)
        assert paper_values.WHITE_BOX["gamma"] == pytest.approx(0.025)
        assert paper_values.WHITE_BOX["detection_rate"] == pytest.approx(0.099)

    def test_greybox_transfer_complements_detection(self):
        greybox = paper_values.GREY_BOX_COUNTS
        assert greybox["target_detection_rate"] + greybox["transfer_rate"] == pytest.approx(1.0)
        binary = paper_values.GREY_BOX_BINARY
        assert binary["target_detection_rate"] + binary["transfer_rate"] == pytest.approx(1.0)

    def test_table4_matches_substitute_architecture(self):
        from repro.models.substitute_model import SUBSTITUTE_LAYER_SIZES
        assert tuple(paper_values.TABLE_IV["layers"]) == SUBSTITUTE_LAYER_SIZES

    def test_table6_rates_are_probabilities(self):
        for row in paper_values.TABLE_VI.values():
            for value in row.values():
                assert 0.0 <= value <= 1.0

    def test_defense_params(self):
        assert paper_values.DEFENSE_PARAMS["distillation_temperature"] == 50.0
        assert paper_values.DEFENSE_PARAMS["pca_components"] == 19


class TestTable1Result:
    def _result(self, malware_fraction=0.5):
        measured = {
            "train": {"total": 100, "clean": 50, "malware": 50},
            "validation": {"total": 20, "clean": 10, "malware": 10},
            "test": {"total": 50, "clean": int(50 * (1 - malware_fraction)),
                     "malware": int(50 * malware_fraction)},
        }
        return Table1Result(scale_name="unit", measured=measured,
                            paper=paper_values.TABLE_I)

    def test_balance_check_accepts_similar_ratios(self):
        assert self._result(malware_fraction=0.64).class_balance_preserved()

    def test_balance_check_rejects_wildly_different_ratios(self):
        assert not self._result(malware_fraction=0.1).class_balance_preserved()

    def test_render_contains_every_split(self):
        rendered = self._result().render()
        for split in ("train", "validation", "test"):
            assert split in rendered


class TestTable3Result:
    def test_matches_paper_detects_mismatch(self):
        good = Table3Result(n_features=491,
                            excerpt=list(enumerate(TABLE_III_EXCERPT, start=475)),
                            paper_excerpt=TABLE_III_EXCERPT)
        assert good.matches_paper()
        bad = Table3Result(n_features=491,
                           excerpt=[(475, "somethingelse")] + list(
                               enumerate(TABLE_III_EXCERPT[1:], start=476)),
                           paper_excerpt=TABLE_III_EXCERPT)
        assert not bad.matches_paper()


class TestFigure5Result:
    def _report(self, mal_adv, mal_clean, clean_adv, theta=0.1, gamma=0.01):
        return DistanceReport(theta=theta, gamma=gamma,
                              malware_to_adversarial=mal_adv,
                              malware_to_clean=mal_clean,
                              clean_to_adversarial=clean_adv)

    def test_ordering_holds_everywhere(self):
        result = Figure5Result(
            gamma_reports=[self._report(0.1, 0.5, 0.6),
                           self._report(0.2, 0.5, 0.7, gamma=0.02)],
            theta_reports=[self._report(0.1, 0.5, 0.6, theta=0.05)])
        assert result.ordering_holds_everywhere()
        assert result.distances_grow_with_strength()

    def test_ordering_violation_detected(self):
        result = Figure5Result(
            gamma_reports=[self._report(0.9, 0.5, 0.6)],
            theta_reports=[])
        assert not result.ordering_holds_everywhere()

    def test_zero_strength_points_are_skipped(self):
        result = Figure5Result(
            gamma_reports=[self._report(0.0, 0.5, 0.4, gamma=0.0)],
            theta_reports=[])
        assert result.ordering_holds_everywhere(skip_zero_strength=True)

    def test_rows_and_render(self):
        result = Figure5Result(gamma_reports=[self._report(0.1, 0.5, 0.6)],
                               theta_reports=[])
        assert len(result.rows()) == 1
        assert "L2(mal, adv)" in result.render()


class TestLiveGreyBoxResult:
    def test_confidence_decrease_check(self):
        trace = LiveGreyBoxTrace(sample_id="s", injected_api="waitmessage",
                                 repetitions=[1, 2], confidences=[0.8, 0.4],
                                 detected=[True, False], original_confidence=0.98)
        result = LiveGreyBoxResult(trace=trace, paper_original_confidence=0.9843,
                                   paper_confidence_after_1=0.8888,
                                   paper_confidence_after_8=0.0)
        assert result.confidence_decreases()
        assert len(result.rows()) == 3
        assert "waitmessage" in result.render()

    def test_no_decrease_detected(self):
        trace = LiveGreyBoxTrace(sample_id="s", injected_api="a",
                                 repetitions=[1], confidences=[0.99],
                                 detected=[True], original_confidence=0.9)
        result = LiveGreyBoxResult(trace=trace, paper_original_confidence=0.98,
                                   paper_confidence_after_1=0.88,
                                   paper_confidence_after_8=0.0)
        assert not result.confidence_decreases()
