"""Tests for the from-scratch PCA used by the dimensionality-reduction defense."""

import numpy as np
import pytest

from repro.defenses.pca import PCA
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture()
def correlated_data():
    rng = np.random.default_rng(0)
    latent = rng.normal(size=(300, 3))
    mixing = rng.normal(size=(3, 10))
    return latent @ mixing + 0.01 * rng.normal(size=(300, 10))


class TestFitTransform:
    def test_transform_shape(self, correlated_data):
        projected = PCA(n_components=3).fit_transform(correlated_data)
        assert projected.shape == (300, 3)

    def test_projected_components_are_uncorrelated(self, correlated_data):
        projected = PCA(n_components=3).fit_transform(correlated_data)
        covariance = np.cov(projected.T)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-6 * np.abs(covariance).max() + 1e-8

    def test_explained_variance_is_sorted(self, correlated_data):
        pca = PCA(n_components=5).fit(correlated_data)
        variance = pca.explained_variance_
        assert np.all(np.diff(variance) <= 1e-12)

    def test_three_latent_dims_capture_nearly_all_variance(self, correlated_data):
        pca = PCA(n_components=3).fit(correlated_data)
        assert pca.explained_variance_ratio_.sum() > 0.99

    def test_components_are_orthonormal(self, correlated_data):
        pca = PCA(n_components=4).fit(correlated_data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_mean_is_training_mean(self, correlated_data):
        pca = PCA(n_components=2).fit(correlated_data)
        np.testing.assert_allclose(pca.mean_, correlated_data.mean(axis=0))

    def test_whiten_gives_unit_variance(self, correlated_data):
        projected = PCA(n_components=3, whiten=True).fit_transform(correlated_data)
        np.testing.assert_allclose(projected.std(axis=0, ddof=1), 1.0, rtol=1e-6)

    def test_full_rank_reconstruction_is_exact(self, correlated_data):
        pca = PCA(n_components=10).fit(correlated_data)
        reconstructed = pca.inverse_transform(pca.transform(correlated_data))
        np.testing.assert_allclose(reconstructed, correlated_data, atol=1e-8)

    def test_low_rank_reconstruction_error_is_small_for_low_rank_data(self, correlated_data):
        pca = PCA(n_components=3).fit(correlated_data)
        errors = pca.reconstruction_error(correlated_data)
        assert errors.mean() < 0.1

    def test_reconstruction_error_larger_for_out_of_distribution(self, correlated_data):
        pca = PCA(n_components=3).fit(correlated_data)
        rng = np.random.default_rng(1)
        outliers = rng.normal(0, 5, size=(20, 10))
        assert (pca.reconstruction_error(outliers).mean()
                > pca.reconstruction_error(correlated_data).mean())


class TestValidation:
    def test_invalid_component_count_rejected(self):
        with pytest.raises(ConfigurationError):
            PCA(n_components=0)

    def test_too_many_components_rejected(self):
        with pytest.raises(ConfigurationError):
            PCA(n_components=11).fit(np.zeros((5, 11)) + np.eye(5, 11))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PCA(n_components=2).transform(np.zeros((3, 4)))

    def test_wrong_dimension_rejected(self, correlated_data):
        pca = PCA(n_components=2).fit(correlated_data)
        with pytest.raises(Exception):
            pca.transform(np.zeros((2, 7)))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, correlated_data):
        pca = PCA(n_components=3, whiten=True).fit(correlated_data)
        pca.save(tmp_path / "pca")
        restored = PCA.load(tmp_path / "pca")
        np.testing.assert_allclose(restored.transform(correlated_data),
                                   pca.transform(correlated_data))
        assert restored.whiten is True
        assert restored.n_components == 3
