"""Unit tests for distributed tracing, SLO burn-rate alerting and live view.

Covers the serving-observability layers on top of the repro.obs core:
trace contexts across namespaces, span-tree assembly (orphans,
duplicates, breakdowns), the multi-window SLO monitor with its shed /
fallback hooks, deterministic gauge merging, and the atomically-published
live snapshot behind ``cli top`` / ``export-metrics``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.obs import (
    BREAKDOWN_SPANS,
    Instrumentation,
    LivePublisher,
    ListSink,
    MetricsRegistry,
    ObsEvent,
    SLOMonitor,
    SLOSpec,
    SpanCollector,
    TraceContext,
    TraceStamper,
    breakdown_summary,
    prometheus_exposition,
    read_snapshot,
    render_top,
    snapshot_path,
)
from repro.obs.trace import SPAN_ID_STRIDE


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@dataclass
class FakeVerdict:
    request_id: str
    latency_ms: float = 1.0
    status: str = "ok"


def span_event(name: str, trace_id: str, span_id: int, parent_id: int,
               duration_s: float = 0.001, **tags) -> ObsEvent:
    return ObsEvent(kind="span", name=name, value=duration_s,
                    span_id=span_id, parent_id=parent_id,
                    trace_id=trace_id, tags=tags)


# --------------------------------------------------------------------- #
# Trace context / namespaces
# --------------------------------------------------------------------- #
class TestTraceContext:
    def test_round_trips_through_dict(self):
        trace = TraceContext(trace_id="req-1", parent_span_id=7)
        assert TraceContext.from_dict(trace.as_dict()) == trace

    def test_namespaced_tracers_never_share_span_ids(self):
        dispatcher = Instrumentation(namespace=0)
        replica = Instrumentation(namespace=3)
        dispatcher_ids = {dispatcher.tracer.allocate_id() for _ in range(100)}
        replica_ids = {replica.tracer.allocate_id() for _ in range(100)}
        assert not dispatcher_ids & replica_ids
        assert all(span_id < SPAN_ID_STRIDE for span_id in dispatcher_ids)
        assert all(3 * SPAN_ID_STRIDE <= span_id < 4 * SPAN_ID_STRIDE
                   for span_id in replica_ids)

    def test_event_trace_id_survives_dict_round_trip(self):
        event = span_event("request.score", "req-9", 12, 3)
        assert ObsEvent.from_dict(event.as_dict()).trace_id == "req-9"

    def test_record_span_declares_remote_parent(self):
        obs = Instrumentation(sink=ListSink())
        trace = TraceContext(trace_id="req-2", parent_span_id=41)
        obs.record_span("batcher.enqueue", started=1.0, ended=1.5,
                        trace=trace, worker=2)
        event = obs.sink.events[-1]
        assert event.trace_id == "req-2"
        assert event.parent_id == 41
        assert event.value == pytest.approx(0.5)
        assert event.tags["worker"] == 2


# --------------------------------------------------------------------- #
# Span collection / trees
# --------------------------------------------------------------------- #
class TestSpanCollector:
    def _full_trace(self, collector: SpanCollector, trace_id: str,
                    base: int = 0) -> None:
        collector.add(span_event("request", trace_id, base + 1, 0,
                                 duration_s=0.010))
        collector.add(span_event("fleet.queue", trace_id, base + 2, base + 1,
                                 duration_s=0.004))
        collector.add(span_event("batcher.enqueue", trace_id, base + 3,
                                 base + 1, duration_s=0.003))
        collector.add(span_event("request.score", trace_id, base + 4,
                                 base + 1, duration_s=0.002))

    def test_assembles_complete_tree(self):
        collector = SpanCollector()
        self._full_trace(collector, "req-1")
        tree = collector.tree("req-1")
        assert tree.complete
        assert tree.root.name == "request"
        assert sorted(child.name for child in tree.root.children) == \
            ["batcher.enqueue", "fleet.queue", "request.score"]
        assert collector.n_orphans == 0

    def test_breakdown_maps_hops_to_keys(self):
        collector = SpanCollector()
        self._full_trace(collector, "req-1")
        parts = collector.tree("req-1").breakdown()
        assert parts["queue_ms"] == pytest.approx(4.0)
        assert parts["batch_wait_ms"] == pytest.approx(3.0)
        assert parts["score_ms"] == pytest.approx(2.0)
        assert parts["total_ms"] == pytest.approx(10.0)

    def test_missing_parent_flags_orphan(self):
        collector = SpanCollector()
        collector.add(span_event("request", "req-1", 1, 0))
        collector.add(span_event("request.score", "req-1", 5, 999))
        tree = collector.tree("req-1")
        assert not tree.complete
        assert [node.name for node in tree.orphans] == ["request.score"]
        assert "orphan" in tree.render()

    def test_duplicate_span_id_counted_first_kept(self):
        collector = SpanCollector()
        collector.add(span_event("request", "req-1", 1, 0, duration_s=0.010))
        collector.add(span_event("request", "req-1", 1, 0, duration_s=0.999))
        tree = collector.tree("req-1")
        assert tree.n_duplicates == 1
        assert not tree.complete
        assert tree.root.duration_ms == pytest.approx(10.0)

    def test_non_span_and_untraced_events_only_counted(self):
        collector = SpanCollector()
        collector.add(ObsEvent(kind="counter", name="serve.requests", value=1))
        collector.add(ObsEvent(kind="span", name="fleet.dispatch", value=0.01))
        assert collector.n_ignored == 1
        assert collector.n_untraced == 1
        assert collector.trace_ids == []

    def test_accepts_dict_events_from_worker_snapshots(self):
        collector = SpanCollector()
        collector.add(span_event("request", "req-1", 1, 0).as_dict())
        collector.add_snapshot({"events": [
            span_event("request.score", "req-1", 2, 1,
                       worker=0).as_dict()]})
        tree = collector.tree("req-1")
        assert tree.complete
        assert tree.root.children[0].tags["worker"] == 0

    def test_error_tag_surfaces_on_node_and_render(self):
        collector = SpanCollector()
        collector.add(span_event("request", "req-1", 1, 0))
        collector.add(span_event("request.score", "req-1", 2, 1, error=True))
        tree = collector.tree("req-1")
        assert tree.root.children[0].error
        assert "[error]" in tree.render()

    def test_breakdown_summary_skips_redispatched_double_hops(self):
        collector = SpanCollector()
        self._full_trace(collector, "req-1")
        self._full_trace(collector, "req-2", base=10)
        # req-2 was redispatched: the dead replica's queue hop survived.
        collector.add(span_event("fleet.queue", "req-2", 99, 11,
                                 duration_s=5.0))
        summary = breakdown_summary(collector.trees())
        assert summary["queue_ms"]["count"] == 1.0
        assert summary["queue_ms"]["mean_ms"] == pytest.approx(4.0)

    def test_breakdown_summary_requires_every_hop(self):
        collector = SpanCollector()
        collector.add(span_event("request", "shed-1", 1, 0))
        summary = breakdown_summary(collector.trees())
        assert summary["total_ms"]["count"] == 0.0


class TestTraceStamper:
    def test_stamp_attaches_context_and_finish_closes_root(self):
        from repro.serving.service import ScoringRequest

        clock = FakeClock()
        obs = Instrumentation(sink=ListSink(), clock=clock)
        stamper = TraceStamper(obs, clock=clock)
        request = stamper.stamp(ScoringRequest(request_id="req-1", payload=[]),
                                started=clock())
        assert request.trace is not None
        assert request.trace.trace_id == "req-1"
        clock.advance(0.25)
        stamper.finish(FakeVerdict("req-1"))
        event = obs.sink.events[-1]
        assert event.name == "request"
        assert event.trace_id == "req-1"
        assert event.parent_id == 0
        assert event.span_id == request.trace.parent_span_id
        assert event.value == pytest.approx(0.25)
        assert stamper.open_count == 0

    def test_finish_is_idempotent_and_ignores_unknown(self):
        obs = Instrumentation(sink=ListSink())
        stamper = TraceStamper(obs)
        stamper.finish(FakeVerdict("never-stamped"))
        assert len(obs.sink) == 0

    def test_unstamped_clock_falls_back_to_verdict_latency(self):
        from repro.serving.service import ScoringRequest

        obs = Instrumentation(sink=ListSink())
        stamper = TraceStamper(obs)
        stamper.stamp(ScoringRequest(request_id="req-1", payload=[]))
        stamper.finish_all([FakeVerdict("req-1", latency_ms=12.0)])
        assert obs.sink.events[-1].value == pytest.approx(0.012)

    def test_sample_every_traces_first_and_every_nth(self):
        from repro.serving.service import ScoringRequest

        obs = Instrumentation(sink=ListSink())
        stamper = TraceStamper(obs, sample_every=4)
        stamped = [stamper.stamp(ScoringRequest(request_id=f"req-{i}",
                                                payload=[]))
                   for i in range(10)]
        traced = [request.request_id for request in stamped
                  if request.trace is not None]
        # Head-based: the decision is made at stamp time, deterministically.
        assert traced == ["req-0", "req-4", "req-8"]
        assert stamper.open_count == 3
        # Finishing the whole verdict stream closes only the sampled roots
        # and ignores pass-through requests without complaint.
        stamper.finish_all([FakeVerdict(request.request_id)
                            for request in stamped])
        assert stamper.open_count == 0
        roots = [event for event in obs.sink.events if event.name == "request"]
        assert [event.trace_id for event in roots] == traced

    def test_sample_every_validates(self):
        obs = Instrumentation()
        with pytest.raises(ValueError, match="sample_every"):
            TraceStamper(obs, sample_every=0)


# --------------------------------------------------------------------- #
# Gauge merge determinism
# --------------------------------------------------------------------- #
class TestGaugeMergeStamps:
    def test_merge_keeps_newest_set_regardless_of_fold_order(self):
        older, newer = MetricsRegistry(), MetricsRegistry()
        older.gauge("depth").set(9.0)
        newer.gauge("depth").set(2.0)  # later monotonic stamp, smaller value
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge_snapshot(older.snapshot())
        forward.merge_snapshot(newer.snapshot())
        backward.merge_snapshot(newer.snapshot())
        backward.merge_snapshot(older.snapshot())
        assert forward.gauge("depth").value == 2.0
        assert backward.gauge("depth").value == 2.0
        assert forward.gauge("depth").max_value == 9.0
        assert backward.gauge("depth").max_value == 9.0

    def test_stampless_legacy_snapshot_never_overrides(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(5.0)
        registry.merge_snapshot(
            {"gauges": {"depth": {"value": 99.0, "max": 99.0}}})
        assert registry.gauge("depth").value == 5.0
        assert registry.gauge("depth").max_value == 99.0


# --------------------------------------------------------------------- #
# SLO specs / monitor
# --------------------------------------------------------------------- #
class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", objective=1.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", target_ms=0.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", on_breach="page")
        with pytest.raises(ValueError):
            SLOSpec(name="x", min_events=0)

    def test_dict_round_trip(self):
        spec = SLOSpec(name="latency", objective=0.95, target_ms=25.0,
                       on_breach="shed")
        assert SLOSpec.from_dict(spec.as_dict()) == spec

    def test_monitor_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SLOMonitor([SLOSpec(name="a"), SLOSpec(name="a")])


class TestSLOMonitor:
    def _monitor(self, obs=None, **overrides):
        defaults = dict(name="latency", objective=0.99, target_ms=10.0,
                        fast_window_s=5.0, slow_window_s=60.0,
                        min_events=10, on_breach="shed")
        defaults.update(overrides)
        clock = FakeClock(now=1000.0)
        return SLOMonitor([SLOSpec(**defaults)],
                          instrumentation=obs, clock=clock), clock

    def test_healthy_stream_never_breaches(self):
        monitor, clock = self._monitor()
        for _ in range(100):
            monitor.observe(latency_ms=1.0)
            clock.advance(0.01)
        statuses = monitor.evaluate()
        assert not statuses[0].breached
        assert statuses[0].attainment == 1.0
        assert monitor.n_alerts == 0
        assert not monitor.should_shed()

    def test_sustained_burn_fires_once_and_arms_shedding(self):
        obs = Instrumentation(sink=ListSink())
        monitor, clock = self._monitor(obs=obs)
        for _ in range(50):
            monitor.observe(latency_ms=100.0)
            clock.advance(0.01)
            monitor.evaluate()
        assert monitor.n_alerts == 1  # edge-triggered: one event per breach
        assert monitor.should_shed()
        assert monitor.active_alerts == ["latency"]
        alert_events = [event for event in obs.sink.events
                        if event.kind == "alert"]
        assert len(alert_events) == 1
        assert alert_events[0].name == "slo.latency"
        assert alert_events[0].tags["on_breach"] == "shed"
        assert obs.metrics.counter("alert.slo.latency").value == 1.0

    def test_min_events_gates_blips(self):
        monitor, clock = self._monitor()
        for _ in range(5):  # fewer than min_events, all bad
            monitor.observe(latency_ms=100.0)
            clock.advance(0.01)
        assert not monitor.evaluate()[0].breached

    def test_breach_clears_when_burn_stops(self):
        monitor, clock = self._monitor(slow_window_s=5.0)
        for _ in range(20):
            monitor.observe(latency_ms=100.0)
            clock.advance(0.01)
        assert monitor.evaluate()[0].breached
        clock.advance(30.0)  # both windows age out entirely
        for _ in range(20):
            monitor.observe(latency_ms=1.0)
            clock.advance(0.01)
        status = monitor.evaluate()[0]
        assert not status.breached
        assert not monitor.should_shed()
        assert monitor.n_alerts == 1

    def test_fast_breach_needs_slow_confirmation(self):
        # An old window full of good outcomes keeps the slow burn low: the
        # two-window AND refuses to page on a fresh blip alone.
        monitor, clock = self._monitor()
        for _ in range(2000):
            monitor.observe(latency_ms=1.0)
            clock.advance(0.1)
        for _ in range(20):
            monitor.observe(latency_ms=100.0)
            clock.advance(0.01)
        status = monitor.evaluate()[0]
        assert status.fast_burn >= 14.4
        assert status.slow_burn < 6.0
        assert not status.breached

    def test_attainment_form_spec_consumes_good_flag(self):
        monitor, clock = self._monitor(target_ms=None, on_breach="fallback")
        for index in range(40):
            monitor.observe(good=index % 2 == 0)
            clock.advance(0.01)
        status = monitor.evaluate()[0]
        assert status.attainment == pytest.approx(0.5)
        assert status.breached
        assert monitor.wants_fallback()
        assert not monitor.should_shed()

    def test_observe_verdict_skips_sheds_counts_errors(self):
        monitor, clock = self._monitor()
        monitor.observe_verdict(FakeVerdict("a", status="shed"))
        assert monitor.evaluate()[0].n_fast == 0
        monitor.observe_verdict(FakeVerdict("b", status="error"))
        monitor.observe_verdict(FakeVerdict("c", latency_ms=1.0))
        status = monitor.evaluate()[0]
        assert status.n_fast == 2
        assert status.attainment == pytest.approx(0.5)

    def test_snapshot_lists_status_dicts(self):
        monitor, clock = self._monitor()
        monitor.observe(latency_ms=1.0)
        monitor.evaluate()
        payload = monitor.snapshot()
        assert payload[0]["name"] == "latency"
        assert payload[0]["on_breach"] == "shed"
        json.dumps(payload)  # live snapshots must be JSON-safe


# --------------------------------------------------------------------- #
# Live snapshots / dashboard / exposition
# --------------------------------------------------------------------- #
class TestLivePublisher:
    def _progress(self, fresh, n_done, n_expected, elapsed_s, **extra):
        info = {"new_verdicts": fresh, "n_done": n_done,
                "n_expected": n_expected, "elapsed_s": elapsed_s}
        info.update(extra)
        return info

    def test_publishes_readable_snapshot(self, tmp_path):
        publisher = LivePublisher(tmp_path, interval_s=0.0)
        publisher(self._progress([FakeVerdict("a", 2.0),
                                  FakeVerdict("b", 4.0)], 2, 8, 1.0,
                                 restarts=1, redispatches=3))
        payload = read_snapshot(tmp_path)
        assert payload["n_done"] == 2
        assert payload["n_expected"] == 8
        assert payload["in_flight"] == 6
        assert payload["rps"] == pytest.approx(2.0)
        assert payload["restarts"] == 1
        assert payload["redispatches"] == 3
        assert payload["latency"]["p50_ms"] == pytest.approx(3.0)
        assert snapshot_path(tmp_path).is_file()

    def test_write_interval_throttles_then_finish_forces(self, tmp_path):
        clock = FakeClock()
        publisher = LivePublisher(tmp_path, interval_s=10.0, clock=clock)
        publisher(self._progress([FakeVerdict("a")], 1, 4, 0.5))
        publisher(self._progress([FakeVerdict("b")], 2, 4, 0.6))
        assert publisher.n_published == 1  # second call inside the interval
        assert read_snapshot(tmp_path)["n_done"] == 1
        publisher.finish()
        payload = read_snapshot(tmp_path)
        assert payload["finished"] is True
        assert payload["n_done"] == 2

    def test_feeds_display_slo_and_embeds_statuses(self, tmp_path):
        slo = SLOMonitor([SLOSpec(name="latency", target_ms=10.0,
                                  min_events=1, on_breach="alert")])
        publisher = LivePublisher(tmp_path, slo=slo, interval_s=0.0)
        publisher(self._progress([FakeVerdict("a", 100.0)], 1, 1, 0.1))
        payload = read_snapshot(tmp_path)
        assert payload["slo"][0]["name"] == "latency"
        assert payload["alerts"] == ["latency"]

    def test_finish_embeds_merged_metrics(self, tmp_path):
        obs = Instrumentation()
        obs.count("serve.requests", 4)
        publisher = LivePublisher(tmp_path, interval_s=0.0)
        publisher.finish(obs_snapshot=obs.snapshot())
        metrics = read_snapshot(tmp_path)["metrics"]
        assert metrics["counters"]["serve.requests"] == 4.0

    def test_closes_roots_via_stamper(self, tmp_path):
        from repro.serving.service import ScoringRequest

        obs = Instrumentation(sink=ListSink())
        stamper = TraceStamper(obs)
        stamper.stamp(ScoringRequest(request_id="req-1", payload=[]))
        publisher = LivePublisher(tmp_path, stamper=stamper, interval_s=0.0)
        publisher(self._progress([FakeVerdict("req-1")], 1, 1, 0.1))
        assert stamper.open_count == 0
        assert obs.sink.events[-1].name == "request"

    def test_read_snapshot_absent_store(self, tmp_path):
        assert read_snapshot(tmp_path / "nowhere") is None


class TestRenderTop:
    def test_renders_placeholder_without_snapshot(self):
        rendered = render_top(None)
        assert "no live snapshot" in rendered

    def test_renders_all_dashboard_rows(self, tmp_path):
        slo = SLOMonitor([SLOSpec(name="latency", target_ms=10.0,
                                  min_events=1, on_breach="shed")])
        obs = Instrumentation()
        obs.gauge("batcher.queue_depth", 7)
        publisher = LivePublisher(tmp_path, instrumentation=obs, slo=slo,
                                  interval_s=0.0)
        publisher(self._info())
        rendered = render_top(read_snapshot(tmp_path))
        assert "progress   3/4" in rendered
        assert "p50" in rendered and "p99" in rendered
        assert "restarts 2" in rendered
        assert "queue depth" in rendered
        assert "BREACH (shed)" in rendered
        assert "alerts     latency" in rendered

    def _info(self):
        return {"new_verdicts": [FakeVerdict("a", 50.0),
                                 FakeVerdict("b", 50.0),
                                 FakeVerdict("c", status="shed")],
                "n_done": 3, "n_expected": 4, "elapsed_s": 0.5,
                "restarts": 2, "redispatches": 0}


class TestPrometheusExposition:
    def test_counters_gauges_histograms_export(self):
        obs = Instrumentation()
        obs.count("serve.requests", 3)
        obs.gauge("batcher.queue_depth", 5)
        obs.observe("batcher.batch_size", 32)
        obs.observe("batcher.batch_size", 16)
        text = prometheus_exposition(obs.metrics.snapshot())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text
        assert "repro_batcher_queue_depth 5" in text
        assert "repro_batcher_batch_size_count 2" in text
        assert "repro_batcher_batch_size_sum 48" in text
        assert text.endswith("\n")

    def test_empty_metrics_export(self):
        assert prometheus_exposition(None) == ""
        assert prometheus_exposition({}) == ""

    def test_names_are_sanitised(self):
        text = prometheus_exposition(
            {"counters": {"span.request-score": 1.0}})
        assert "repro_span_request_score_total 1" in text
