"""Tests for repro.config (scale profiles)."""

import pytest

from repro.config import (
    CLASS_CLEAN,
    CLASS_MALWARE,
    N_FEATURES,
    PAPER_PROFILE,
    PROFILES,
    SMALL_PROFILE,
    TINY_PROFILE,
    ScaleProfile,
    default_profile,
    get_profile,
)
from repro.exceptions import ConfigurationError


class TestConstants:
    def test_feature_dimension_matches_paper(self):
        assert N_FEATURES == 491

    def test_class_labels(self):
        assert CLASS_CLEAN == 0
        assert CLASS_MALWARE == 1


class TestPaperProfile:
    def test_table1_training_sizes(self):
        assert PAPER_PROFILE.train_clean == 28594
        assert PAPER_PROFILE.train_malware == 28576
        assert PAPER_PROFILE.train_total == 57170

    def test_table1_validation_sizes(self):
        assert PAPER_PROFILE.val_clean == 280
        assert PAPER_PROFILE.val_malware == 298
        assert PAPER_PROFILE.val_total == 578

    def test_table1_test_sizes(self):
        assert PAPER_PROFILE.test_clean == 16154
        assert PAPER_PROFILE.test_malware == 28874
        assert PAPER_PROFILE.test_total == 45028

    def test_paper_attack_samples_cover_all_test_malware(self):
        assert PAPER_PROFILE.attack_samples == PAPER_PROFILE.test_malware

    def test_paper_hidden_scale_is_identity(self):
        assert PAPER_PROFILE.scaled_hidden(1200) == 1200


class TestScaleProfiles:
    def test_all_registered_profiles_have_unique_names(self):
        assert len(PROFILES) == len({p.name for p in PROFILES.values()})

    @pytest.mark.parametrize("name", ["paper", "medium", "small", "tiny"])
    def test_get_profile_returns_named_profile(self, name):
        assert get_profile(name).name == name

    def test_get_profile_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_profile("gigantic")

    def test_profiles_shrink_monotonically(self):
        order = ["paper", "medium", "small", "tiny"]
        totals = [get_profile(name).train_total for name in order]
        assert totals == sorted(totals, reverse=True)

    def test_scaled_hidden_has_floor(self):
        assert TINY_PROFILE.scaled_hidden(8) >= 4

    def test_with_overrides_changes_only_requested_fields(self):
        modified = SMALL_PROFILE.with_overrides(attack_samples=5)
        assert modified.attack_samples == 5
        assert modified.train_clean == SMALL_PROFILE.train_clean
        assert SMALL_PROFILE.attack_samples != 5


class TestProfileValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL_PROFILE.with_overrides(train_clean=0)

    def test_non_positive_learning_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL_PROFILE.with_overrides(learning_rate=0.0)

    def test_non_positive_hidden_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL_PROFILE.with_overrides(hidden_scale=-1.0)


class TestDefaultProfile:
    def test_default_profile_without_env_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_profile().name == "small"

    def test_default_profile_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert default_profile().name == "tiny"

    def test_default_profile_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigurationError):
            default_profile()
