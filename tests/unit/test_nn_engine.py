"""Tests for the tensor compute engine (dtype config + buffer reuse)."""

import numpy as np
import pytest

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.exceptions import ConfigurationError
from repro.nn.engine import (
    TensorEngine,
    as_compute,
    compute_dtype,
    ensure_buffer,
    get_engine,
    set_default_dtype,
    set_engine,
    use_dtype,
)
from repro.nn.layers import Dense, Parameter
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer


class TestEngineConfiguration:
    def test_default_dtype_follows_environment(self):
        import os

        # float64 unless the suite runs under REPRO_DTYPE (the CI matrix
        # exercises both engine dtypes).
        expected = np.dtype(os.environ.get("REPRO_DTYPE", "float64"))
        assert compute_dtype() == expected

    def test_set_default_dtype_returns_previous(self):
        original = compute_dtype()
        other = np.float32 if original == np.float64 else np.float64
        previous = set_default_dtype(other)
        try:
            assert previous == original
            assert compute_dtype() == other
        finally:
            set_default_dtype(previous)

    def test_use_dtype_restores_on_exit(self):
        original = compute_dtype()
        other = np.float32 if original == np.float64 else np.float64
        with use_dtype(other):
            assert compute_dtype() == other
        assert compute_dtype() == original

    def test_use_dtype_restores_on_error(self):
        original = compute_dtype()
        other = np.float32 if original == np.float64 else np.float64
        with pytest.raises(RuntimeError):
            with use_dtype(other):
                raise RuntimeError("boom")
        assert compute_dtype() == original

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            set_default_dtype("int32")
        with pytest.raises(ConfigurationError):
            TensorEngine(dtype="float16")
        with pytest.raises(ConfigurationError):
            # Not a dtype at all (np.dtype raises TypeError internally).
            set_default_dtype("bogus")

    def test_set_engine_swaps_instance(self):
        replacement = TensorEngine(dtype="float64", reuse_buffers=False)
        previous = set_engine(replacement)
        try:
            assert get_engine() is replacement
        finally:
            set_engine(previous)

    def test_as_compute_avoids_copy_when_possible(self):
        x = np.zeros((3, 3), dtype=compute_dtype())
        assert as_compute(x) is x

    def test_ensure_buffer_reuses_matching_buffer(self):
        buf = np.empty((4, 5), dtype=np.float64)
        assert ensure_buffer(buf, (4, 5), np.dtype(np.float64)) is buf
        assert ensure_buffer(buf, (4, 6), np.dtype(np.float64)) is not buf
        assert ensure_buffer(None, (2, 2), np.dtype(np.float32)).dtype == np.float32


class TestDtypePropagation:
    def test_parameter_follows_engine_dtype(self):
        with use_dtype("float32"):
            param = Parameter("weight", np.ones((2, 2)))
        assert param.value.dtype == np.float32
        assert param.grad.dtype == np.float32

    def test_network_built_under_float32_computes_in_float32(self):
        with use_dtype("float32"):
            network = NeuralNetwork.mlp([6, 4, 2], random_state=0)
        logits = network.predict_logits(np.zeros((3, 6)))
        assert logits.dtype == np.float32

    def test_float32_network_keeps_dtype_after_context_exit(self):
        with use_dtype("float32"):
            network = NeuralNetwork.mlp([6, 4, 2], random_state=0)
        # Engine is back to float64 here, but the network's parameters carry
        # their dtype with them.
        assert network.predict_logits(np.zeros((1, 6))).dtype == np.float32

    def test_save_load_roundtrip_preserves_values_and_dtype(self, tmp_path):
        with use_dtype("float32"):
            network = NeuralNetwork.mlp([5, 4, 2], random_state=1)
            network.save(tmp_path / "net32")
        # Loading under the default (float64) engine must restore the
        # checkpoint's own compute dtype, not the engine default.
        restored = NeuralNetwork.load(tmp_path / "net32")
        assert all(p.value.dtype == np.float32 for p in restored.parameters())
        x = np.linspace(0.0, 1.0, 10).reshape(2, 5)
        np.testing.assert_allclose(restored.predict_logits(x),
                                   network.predict_logits(x), atol=1e-6)

    def test_predict_logits_does_not_alias_reuse_buffers(self):
        network = NeuralNetwork.mlp([6, 4, 2], random_state=2)
        rng = np.random.default_rng(0)
        x1, x2 = rng.random((8, 6)), rng.random((8, 6))
        first = network.predict_logits(x1)
        snapshot = first.copy()
        second = network.predict_logits(x2)
        assert second is not first
        np.testing.assert_array_equal(first, snapshot)


class TestBufferReuseEquivalence:
    """Buffer reuse is a pure optimisation: outputs must be identical."""

    def _run_all(self, reuse: bool):
        engine = TensorEngine(dtype="float64", reuse_buffers=reuse)
        previous = set_engine(engine)
        try:
            rng = np.random.default_rng(42)
            x = rng.random((32, 9))
            y = rng.integers(0, 2, size=32)
            network = NeuralNetwork.mlp([9, 7, 5, 2], random_state=3)
            trainer = Trainer(network, optimizer=Adam(learning_rate=1e-3),
                              batch_size=10, epochs=3, random_state=4)
            history = trainer.fit(x, y)
            logits = np.array(network.predict_logits(x))
            jacobian = network.class_gradients(x)
            grad = network.loss_input_gradient(x, y)
            return history.train_loss, logits, jacobian, grad
        finally:
            set_engine(previous)

    def test_reuse_matches_no_reuse(self):
        loss_on, logits_on, jac_on, grad_on = self._run_all(reuse=True)
        loss_off, logits_off, jac_off, grad_off = self._run_all(reuse=False)
        np.testing.assert_allclose(loss_on, loss_off, rtol=1e-12)
        np.testing.assert_allclose(logits_on, logits_off, rtol=1e-12)
        np.testing.assert_allclose(jac_on, jac_off, rtol=1e-12)
        np.testing.assert_allclose(grad_on, grad_off, rtol=1e-12)

    def test_consecutive_backwards_do_not_clobber_jacobian(self):
        # The per-class loop runs several backwards off one forward; the
        # Jacobian rows must not alias the reused layer buffers.
        network = NeuralNetwork.mlp([8, 6, 3], random_state=5)
        x = np.random.default_rng(6).random((4, 8))
        jacobian = network.class_gradients(x)
        rows = [jacobian[:, i, :].copy() for i in range(3)]
        again = network.class_gradients(x)
        for i in range(3):
            np.testing.assert_array_equal(again[:, i, :], rows[i])


class TestAttackDtypeAgreement:
    def _as_float32(self, network: NeuralNetwork) -> NeuralNetwork:
        clone = network.clone()
        for param in clone.parameters():
            param.value = param.value.astype(np.float32)
            param.grad = np.zeros_like(param.value)
        return clone

    def test_jsma_success_rate_matches_across_engines(self, tiny_target, tiny_malware):
        """The same trained model attacked under float32 vs float64 agrees
        on the attack success rate within 1% (acceptance criterion)."""
        constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
        result64 = JsmaAttack(tiny_target.network, constraints).run(
            tiny_malware.features)
        network32 = self._as_float32(tiny_target.network)
        result32 = JsmaAttack(network32, constraints).run(tiny_malware.features)
        assert abs(result32.evasion_rate - result64.evasion_rate) <= 0.01 + 1e-9

    def test_predictions_match_across_engines(self, tiny_target, tiny_malware):
        network32 = self._as_float32(tiny_target.network)
        np.testing.assert_array_equal(
            network32.predict(tiny_malware.features),
            tiny_target.network.predict(tiny_malware.features))
