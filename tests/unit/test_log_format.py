"""Tests for the Table II log format (render + parse round trip)."""

import pytest

from repro.apilog.log_format import ApiLog, LogRecord, format_line, parse_line
from repro.exceptions import SandboxError


class TestFormatLine:
    def test_matches_table2_shape(self):
        record = LogRecord(api="GetFileType", address=0x7FEFDD39D0C, args=(),
                           thread_id=61468)
        assert format_line(record) == 'GetFileType:7FEFDD39D0C ()"61468"'

    def test_arguments_are_comma_joined(self):
        record = LogRecord(api="GetProcAddress", address=0x13FBC34D6,
                           args=("76D30000", '"FlsAlloc"'), thread_id=61484)
        assert format_line(record) == 'GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"'


class TestParseLine:
    def test_parses_table2_examples(self):
        record = parse_line('GetStartupInfoW:7FEFDD39C37 ()"61468"')
        assert record.api == "GetStartupInfoW"
        assert record.address == 0x7FEFDD39C37
        assert record.args == ()
        assert record.thread_id == 61468

    def test_parses_arguments(self):
        record = parse_line('GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"')
        assert record.args == ("76D30000", '"FlsAlloc"')

    def test_round_trip(self):
        original = LogRecord(api="WriteFile", address=0x13FBC4707,
                             args=("3C",), thread_id=1234)
        assert parse_line(format_line(original)) == original

    def test_leading_whitespace_tolerated(self):
        assert parse_line('  GetCPInfo:13FBC263D ()"61484"').api == "GetCPInfo"

    @pytest.mark.parametrize("line", [
        "", "garbage", "NoAddress ()\"1\"", "Api:XYZ ()\"1\"", "Api:1F (unclosed\"1\"",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(SandboxError):
            parse_line(line)

    def test_canonical_api_lowercases(self):
        assert parse_line('WriteFile:1F ()"1"').canonical_api() == "writefile"


class TestApiLog:
    def _make_log(self):
        log = ApiLog(sample_id="s1", os_version="win7", label=1)
        log.append(LogRecord("GetFileType", 0x10, (), 1))
        log.append(LogRecord("WriteFile", 0x20, (), 1))
        log.append(LogRecord("writefile", 0x30, (), 2))
        return log

    def test_len_and_iteration(self):
        log = self._make_log()
        assert len(log) == 3
        assert len(list(log)) == 3

    def test_api_counts_are_case_insensitive(self):
        counts = self._make_log().api_counts()
        assert counts["writefile"] == 2
        assert counts["getfiletype"] == 1

    def test_api_names_in_call_order(self):
        assert self._make_log().api_names() == ["getfiletype", "writefile", "writefile"]

    def test_text_round_trip(self):
        log = self._make_log()
        restored = ApiLog.from_text(log.to_text(), sample_id="s1",
                                    os_version="win7", label=1)
        assert restored.api_counts() == log.api_counts()
        assert len(restored) == len(log)

    def test_from_text_skips_blank_lines(self):
        text = 'WriteFile:1F ()"1"\n\n\nReadFile:2F ()"1"\n'
        assert len(ApiLog.from_text(text)) == 2

    def test_head_returns_prefix_copy(self):
        log = self._make_log()
        head = log.head(2)
        assert len(head) == 2
        assert head.sample_id == log.sample_id
        head.append(LogRecord("ReadFile", 0x40, (), 1))
        assert len(log) == 3
