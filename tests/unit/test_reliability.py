"""Tests for the reliability layer: faults, retry/breaker, report, degradation."""

import numpy as np
import pytest

from repro.exceptions import ReproError, ServingError
from repro.reliability import (
    FAULT_ACTIONS,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ReliabilityReport,
    RetryPolicy,
    WorkerCrash,
    maybe_fire,
)
from repro.serving import MicroBatcher, ModelRegistry
from repro.serving.service import ScoringRequest, ScoringService


@pytest.fixture(scope="module")
def tiny_servable(tiny_context):
    return ModelRegistry().get("target", context=tiny_context)


@pytest.fixture(scope="module")
def malware_rows(tiny_context):
    return tiny_context.attack_malware.features[:16]


def no_sleep(_seconds: float) -> None:
    """Sleep stub so retry/backoff tests run instantly."""


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            FaultSpec(site="s", action="meteor")
        with pytest.raises(ReproError):
            FaultSpec(site="s", at=0)
        with pytest.raises(ReproError):
            FaultSpec(site="s", count=0)
        with pytest.raises(ReproError):
            FaultSpec(site="s", delay_ms=-1.0)

    def test_where_filter_matches_subset(self):
        spec = FaultSpec(site="fleet.dispatch", where={"worker": 1})
        assert spec.matches({"worker": 1, "seq": 9})
        assert not spec.matches({"worker": 2, "seq": 9})
        assert not spec.matches({"seq": 9})
        assert FaultSpec(site="s").matches({})  # empty filter matches all

    def test_dict_round_trip(self):
        spec = FaultSpec(site="service.flush", action="delay", at=3, count=2,
                         delay_ms=10.0, where={"worker": 0}, message="spike")
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        # Defaults are elided from the serialised form.
        assert set(FaultSpec(site="s").to_dict()) == {"site", "action", "at"}

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ReproError, match="unknown"):
            FaultSpec.from_dict({"site": "s", "colour": "red"})
        with pytest.raises(ReproError, match="site"):
            FaultSpec.from_dict({"action": "error"})


class TestFaultPlan:
    def _plan(self) -> FaultPlan:
        return FaultPlan(specs=(
            FaultSpec(site="fleet.dispatch", action="crash", at=2),
            FaultSpec(site="service.flush", action="error"),
            FaultSpec(site="fleet.dispatch", action="delay", delay_ms=5.0),
        ))

    def test_len_and_sites(self):
        plan = self._plan()
        assert len(plan) == 3
        assert plan.sites() == ["fleet.dispatch", "service.flush"]
        assert len(FaultPlan()) == 0

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_accepts_wrapped_bare_and_none(self):
        wrapped = FaultPlan.from_dict({"faults": [{"site": "s"}]})
        bare = FaultPlan.from_dict([{"site": "s"}])
        assert wrapped == bare
        assert len(wrapped) == 1
        assert FaultPlan.from_dict(None) == FaultPlan()

    def test_invalid_json_raises(self):
        with pytest.raises(ReproError, match="fault-plan JSON"):
            FaultPlan.from_json("{not json")


class TestFaultInjector:
    def test_fires_on_nth_matching_hit_only(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", action="error", at=3),))
        injector = plan.injector()
        injector.fire("s")
        injector.fire("s")
        with pytest.raises(InjectedFault):
            injector.fire("s")
        injector.fire("s")  # hit 4: past the window
        assert injector.fired == {"s": 1}
        assert injector.fired_total() == 1

    def test_count_widens_the_hit_window(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", at=2, count=2),))
        injector = plan.injector()
        injector.fire("s")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("s")
        injector.fire("s")
        assert injector.fired == {"s": 2}

    def test_scope_merges_into_context(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", where={"worker": 1}),))
        unmatched = plan.injector(scope={"worker": 0})
        unmatched.fire("s")  # filtered out: no hit, no fault
        assert unmatched.fired == {}
        matched = plan.injector(scope={"worker": 1})
        with pytest.raises(InjectedFault):
            matched.fire("s")
        # Call-site context overrides the scope on key collisions.
        overridden = plan.injector(scope={"worker": 0})
        with pytest.raises(InjectedFault):
            overridden.fire("s", worker=1)

    def test_crash_action_raises_base_exception(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", action="crash"),))
        injector = plan.injector()
        with pytest.raises(WorkerCrash):
            injector.fire("s")
        # WorkerCrash must sail past `except Exception` recovery code.
        assert not issubclass(WorkerCrash, Exception)

    def test_delay_action_sleeps_and_returns_spec(self):
        slept = []
        plan = FaultPlan(specs=(
            FaultSpec(site="s", action="delay", delay_ms=25.0),))
        injector = plan.injector(sleep=slept.append)
        fired = injector.fire("s")
        assert fired is plan.specs[0]
        assert slept == [0.025]

    def test_malformed_action_returns_spec_without_raising(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", action="malformed"),))
        injector = plan.injector()
        assert injector.fire("s").action == "malformed"
        assert injector.fire("s") is None

    def test_maybe_fire_none_injector_is_noop(self):
        assert maybe_fire(None, "s", worker=3) is None


# --------------------------------------------------------------------------- #
# RetryPolicy / CircuitBreaker
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError):
            RetryPolicy().delay(-1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3,
                             jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_token_keyed(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=11)
        assert policy.delay(0, token=3) == policy.delay(0, token=3)
        assert policy.delay(0, token=3) != policy.delay(0, token=4)
        # Jitter only ever adds, bounded by the jitter fraction.
        assert 0.1 <= policy.delay(0, token=3) < 0.1 * 1.5

    def test_run_retries_then_succeeds(self):
        attempts = {"n": 0}
        retries_seen = []

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError("transient")
            return "done"

        policy = RetryPolicy(max_retries=2, base_delay_s=0.0, jitter=0.0)
        result = policy.run(flaky, sleep=no_sleep,
                            on_retry=lambda a, e: retries_seen.append(a))
        assert result == "done"
        assert attempts["n"] == 3
        assert retries_seen == [0, 1]

    def test_run_raises_after_exhaustion(self):
        def always_fails():
            raise ValueError("permanent")

        policy = RetryPolicy(max_retries=1, base_delay_s=0.0)
        with pytest.raises(ValueError, match="permanent"):
            policy.run(always_fails, sleep=no_sleep)

    def test_run_only_retries_listed_exceptions(self):
        calls = {"n": 0}

        def crashes():
            calls["n"] += 1
            raise WorkerCrash("hard death")

        policy = RetryPolicy(max_retries=5, base_delay_s=0.0)
        with pytest.raises(WorkerCrash):
            policy.run(crashes, sleep=no_sleep)
        assert calls["n"] == 1  # BaseException never retried by default

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.01, seed=7)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert RetryPolicy.from_dict(None) == RetryPolicy()
        assert policy.max_attempts == 5


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(reset_after_s=-1.0)

    def test_trips_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=1.0,
                                 clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.n_trips == 1
        clock.advance(1.0)
        assert breaker.state == "half-open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.n_trips == 1

    def test_half_open_failure_reopens_without_new_trip(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == "half-open"
        breaker.record_failure()  # trial call failed: cooldown restarts
        assert breaker.state == "open"
        assert breaker.n_trips == 1  # re-opening is not a new trip


# --------------------------------------------------------------------------- #
# ReliabilityReport
# --------------------------------------------------------------------------- #
class TestReliabilityReport:
    def test_empty_and_total_events(self):
        report = ReliabilityReport()
        assert report.empty()
        assert report.total_events() == 0
        report.sheds += 2
        assert not report.empty()
        assert report.total_events() == 2
        faults_only = ReliabilityReport(faults={"s": 1})
        assert not faults_only.empty()
        assert faults_only.total_events() == 0

    def test_merge_sums_counters_and_faults(self):
        left = ReliabilityReport(restarts=1, faults={"a": 1})
        right = ReliabilityReport(restarts=2, flush_retries=3,
                                  faults={"a": 1, "b": 4})
        merged = left.merge(right)
        assert merged is left
        assert left.restarts == 3
        assert left.flush_retries == 3
        assert left.faults == {"a": 2, "b": 4}

    def test_dict_round_trip(self):
        report = ReliabilityReport(restarts=1, redispatches=2, sheds=3,
                                   faults={"fleet.dispatch": 1})
        clone = ReliabilityReport.from_dict(report.as_dict())
        assert clone == report
        assert ReliabilityReport.from_dict(None) == ReliabilityReport()

    def test_record_faults_accumulates(self):
        report = ReliabilityReport()
        report.record_faults({"s": 2})
        report.record_faults({"s": 1, "t": 1})
        assert report.faults == {"s": 3, "t": 1}

    def test_render(self):
        assert "no events" in ReliabilityReport().render()
        rendered = ReliabilityReport(restarts=1,
                                     faults={"service.flush": 2}).render()
        assert "restarts=1" in rendered
        assert "service.flush=2" in rendered


# --------------------------------------------------------------------------- #
# MicroBatcher: retries and poison bisection
# --------------------------------------------------------------------------- #
class TestBatcherReliability:
    def test_retry_policy_reattempts_transient_flush_failure(self):
        attempts = {"n": 0}

        def flaky_flush(batch):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ValueError("transient")
            return [item * 10 for item in batch]

        batcher = MicroBatcher(flaky_flush, max_batch_size=2,
                               retry_policy=RetryPolicy(max_retries=1,
                                                        base_delay_s=0.0),
                               sleep=no_sleep)
        assert batcher.submit_many([1, 2]) == [10, 20]
        assert batcher.n_retries == 1
        assert batcher.n_flushes == 1

    def test_bisection_isolates_single_poison_item(self):
        def flush(batch):
            if "poison" in batch:
                raise ValueError("bad item")
            return [item.upper() for item in batch]

        isolated = []
        batcher = MicroBatcher(
            flush, max_batch_size=8,
            error_fn=lambda item, error: f"error:{item}",
            on_isolate=lambda item, error: isolated.append(item))
        results = batcher.submit_many(
            ["a", "b", "poison", "c", "d", "e", "f", "g"])
        # Order is preserved and only the poison item degrades.
        assert results == ["A", "B", "error:poison", "C", "D", "E", "F", "G"]
        assert batcher.n_isolated == 1
        assert isolated == ["poison"]

    def test_bisection_handles_multiple_poison_items(self):
        def flush(batch):
            if any(item < 0 for item in batch):
                raise ValueError("negative")
            return list(batch)

        batcher = MicroBatcher(flush, max_batch_size=4,
                               error_fn=lambda item, error: None)
        assert batcher.submit_many([1, -2, -3, 4]) == [1, None, None, 4]
        assert batcher.n_isolated == 2

    def test_without_error_fn_failure_still_restores_batch(self):
        def bad_flush(batch):
            raise ValueError("boom")

        batcher = MicroBatcher(bad_flush, max_batch_size=4)
        batcher.submit("x")
        with pytest.raises(ValueError):
            batcher.flush()
        assert batcher.pending == 1  # restored, not lost

    def test_base_exception_crash_skips_bisection_and_restores(self):
        def crashing_flush(batch):
            raise WorkerCrash("replica death")

        batcher = MicroBatcher(crashing_flush, max_batch_size=4,
                               error_fn=lambda item, error: "absorbed")
        batcher.submit_many(["x", "y"])
        with pytest.raises(WorkerCrash):
            batcher.flush()
        assert batcher.pending == 2  # crash never eats queued items
        assert batcher.n_isolated == 0


# --------------------------------------------------------------------------- #
# ScoringService degradation: shed / fallback / error verdicts
# --------------------------------------------------------------------------- #
class TestServiceDegradation:
    def test_open_breaker_sheds_at_submit(self, tiny_servable, malware_rows):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=10.0,
                                 clock=clock)
        service = ScoringService(tiny_servable, circuit_breaker=breaker,
                                 max_batch_size=4)
        breaker.record_failure()  # trip it manually
        verdicts = service.submit(malware_rows[0])
        assert len(verdicts) == 1
        shed = verdicts[0]
        assert shed.status == "shed" and not shed.is_scored
        assert shed.label == -1 and shed.verdict == "shed"
        assert service.reliability.sheds == 1
        assert service.tracker.count == 0  # shed requests are never recorded
        assert service.pending == 0

    def test_breaker_trips_on_injected_flush_failures(self, tiny_servable,
                                                      malware_rows):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0,
                                 clock=clock)
        plan = FaultPlan(specs=(FaultSpec(site="service.flush",
                                          action="error", at=1),))
        service = ScoringService(tiny_servable, circuit_breaker=breaker,
                                 max_batch_size=1,
                                 injector=plan.injector())
        with pytest.raises(InjectedFault):
            service.submit(malware_rows[0])
        assert service.reliability.breaker_trips == 1
        # Now open: the next submission sheds instead of queueing.
        assert service.submit(malware_rows[1])[0].status == "shed"
        # After the cooldown the trial call succeeds and the breaker closes.
        clock.advance(5.0)
        verdict = service.submit(malware_rows[2])[0]
        assert verdict.status == "ok"
        assert breaker.state == "closed"

    def test_retry_policy_recovers_injected_flush_error(self, tiny_servable,
                                                        malware_rows):
        plan = FaultPlan(specs=(FaultSpec(site="service.flush",
                                          action="error", at=1),))
        service = ScoringService(
            tiny_servable, max_batch_size=4,
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.0),
            injector=plan.injector(), retry_sleep=no_sleep)
        verdicts = [verdict for row in malware_rows[:4]
                    for verdict in service.submit(row)]
        verdicts += service.drain()
        assert len(verdicts) == 4
        assert all(verdict.status == "ok" for verdict in verdicts)
        assert service.reliability.flush_retries == 1
        baseline = ScoringService(tiny_servable).score_many(
            list(malware_rows[:4]))
        assert [v.malware_probability for v in verdicts] == \
               [v.malware_probability for v in baseline]

    def test_poison_request_isolated_into_error_verdict(self, tiny_servable,
                                                        malware_rows):
        service = ScoringService(tiny_servable, max_batch_size=8,
                                 isolate_poison=True)
        rows = [service.make_request(row) for row in malware_rows[:5]]
        # Pre-wrapped requests skip door validation; the NaN payload poisons
        # the flush and must be bisected out, not wedge the batch.
        poison = ScoringRequest(request_id="poison",
                                payload=np.full(service.n_features, np.nan))
        verdicts = []
        for request in rows[:3] + [poison] + rows[3:]:
            verdicts.extend(service.submit(request))
        verdicts.extend(service.drain())
        by_id = {verdict.request_id: verdict for verdict in verdicts}
        assert len(verdicts) == 6
        assert by_id["poison"].status == "error"
        assert by_id["poison"].label == -1
        assert sum(not v.is_scored for v in verdicts) == 1
        assert service.reliability.isolated == 1
        assert service.tracker.count == 5  # error verdicts are not recorded

    def test_defense_fallback_after_repeated_failures(self, tiny_servable,
                                                      malware_rows):
        class BrokenDefense:
            name = "broken_defense"
            calls = 0

            def decide(self, features):
                self.calls += 1
                raise RuntimeError("defense wedged")

        detector = BrokenDefense()
        service = ScoringService(
            tiny_servable, detector=detector, max_batch_size=2,
            retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.0),
            fallback_after=2, retry_sleep=no_sleep)
        assert service.defense_name == "broken_defense"
        verdicts = [verdict for row in malware_rows[:2]
                    for verdict in service.submit(row)]
        verdicts += service.drain()
        # Two defended attempts failed, the budget tripped, and the retry
        # scored the batch on the undefended fast path.
        assert service.fell_back
        assert service.defense_name is None
        assert detector.calls == 2
        assert len(verdicts) == 2
        assert all(v.status == "ok" and v.defense is None for v in verdicts)
        assert service.reliability.fallbacks == 1
        assert service.reliability.flush_retries == 2
        undefended = ScoringService(tiny_servable).score_many(
            list(malware_rows[:2]))
        assert [v.label for v in verdicts] == [v.label for v in undefended]

    def test_fallback_after_validation(self, tiny_servable):
        with pytest.raises(ServingError):
            ScoringService(tiny_servable, fallback_after=0)
