"""Bench: regenerate Table V (adversarial-training dataset composition)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table5_advtraining(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("table5", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "table5_advtraining", rendered)
    print("\n" + rendered)
    assert result.adversarial_examples_included()
    assert result.training_set_is_balanced()
    # the augmented training set is larger than the original one
    assert result.data.train.n_samples > bench_context.corpus.train.n_samples
