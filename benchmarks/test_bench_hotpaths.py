"""Micro-benchmarks for the fast-compute-core hot paths.

Unlike the experiment benches (which regenerate whole tables/figures), these
measure the primitives every experiment reduces to:

* ``class_gradients`` — fused single-backward binary Jacobian vs. the
  per-class loop the seed implementation used;
* one JSMA step — Jacobian + early-stop prediction from the same forward
  pass vs. the seed-equivalent cost (per-class Jacobian + a second
  ``predict`` forward pass);
* one training epoch of the Table IV substitute;
* an :class:`ExperimentContext` build with a cold vs. warm artifact cache.

Measured numbers (seconds, best of several repeats) are appended to
``BENCH_hotpaths.json`` at the repository root so the speedups are recorded
evidence, not assertions alone.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import TINY_PROFILE
from repro.experiments.context import ExperimentContext
from repro.models.substitute_model import SubstituteModel
from repro.nn.engine import use_dtype
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer
from repro.utils.artifact_cache import ArtifactCache

BENCH_JSON = Path(__file__).parents[1] / "BENCH_hotpaths.json"

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def best_of(func, repeats: int = 7, number: int = 3) -> float:
    """Best per-call wall time over ``repeats`` batches of ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            func()
        best = min(best, (time.perf_counter() - start) / number)
    return best


@pytest.fixture(scope="module")
def hot_network(bench_scale):
    """An (untrained) Table IV substitute network at the bench scale."""
    return SubstituteModel.for_scale(bench_scale, random_state=7).network


@pytest.fixture(scope="module")
def hot_batch(bench_scale, hot_network):
    """A malware-feature-shaped batch (values in [0, 1], mostly sparse)."""
    rng = np.random.default_rng(BENCH_SEED)
    batch = rng.random((256, hot_network.input_dim))
    batch[batch < 0.6] = 0.0
    return np.clip(batch, 0.0, 1.0)


def test_bench_class_gradients_fused(hot_network, hot_batch):
    """The fused binary Jacobian beats the per-class backward loop."""
    fused = best_of(lambda: hot_network.class_gradients(hot_batch))
    loop = best_of(lambda: hot_network.class_gradients(hot_batch, fused=False))
    speedup = loop / fused
    _record("class_gradients", fused_s=fused, per_class_loop_s=loop,
            speedup=speedup, batch=hot_batch.shape[0])
    print(f"\nclass_gradients: fused {fused * 1e3:.3f} ms, "
          f"loop {loop * 1e3:.3f} ms, speedup {speedup:.2f}x")
    # One backward instead of two; the shared forward bounds the gain below 2x.
    assert speedup > 1.1


def test_bench_jsma_step(hot_network, hot_batch):
    """One JSMA step is >= 1.5x faster than the seed-equivalent step.

    Seed cost per iteration: per-class Jacobian (forward + two backwards)
    plus a separate early-stop ``predict`` (another forward).  Current cost:
    one forward + one fused backward, with the early-stop prediction read
    from the Jacobian pass's probabilities.
    """
    def current_step():
        jacobian, probs = hot_network.class_gradients(hot_batch, return_probs=True)
        np.argmax(probs, axis=1)

    def seed_equivalent_step():
        hot_network.class_gradients(hot_batch, fused=False)
        hot_network.predict(hot_batch)

    current = best_of(current_step)
    seed = best_of(seed_equivalent_step)
    speedup = seed / current
    _record("jsma_step", current_s=current, seed_equivalent_s=seed,
            speedup=speedup, batch=hot_batch.shape[0])
    print(f"\njsma_step: current {current * 1e3:.3f} ms, "
          f"seed-equivalent {seed * 1e3:.3f} ms, speedup {speedup:.2f}x")
    assert speedup >= 1.5


def test_bench_jsma_attack(benchmark, hot_network, hot_batch):
    """End-to-end JSMA run at the paper's operating point (crafting model)."""
    constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
    attack = JsmaAttack(hot_network, constraints=constraints, early_stop=True)
    result = benchmark.pedantic(lambda: attack.run(hot_batch[:64]),
                                rounds=3, iterations=1)
    _record("jsma_attack_64x025", mean_perturbed=result.mean_perturbed_features)
    assert result.adversarial.shape == hot_batch[:64].shape


def test_bench_float32_engine(bench_scale, hot_batch):
    """float32 engine throughput on the same Jacobian workload (recorded)."""
    with use_dtype("float32"):
        network32 = SubstituteModel.for_scale(bench_scale, random_state=7).network
    batch32 = hot_batch.astype(np.float32)
    f32 = best_of(lambda: network32.class_gradients(batch32))
    _record("class_gradients_float32", fused_s=f32, batch=hot_batch.shape[0])
    print(f"\nclass_gradients float32: {f32 * 1e3:.3f} ms")
    jac64 = SubstituteModel.for_scale(bench_scale, random_state=7) \
        .network.class_gradients(hot_batch[:8])
    jac32 = network32.class_gradients(batch32[:8])
    np.testing.assert_allclose(jac32, jac64, atol=1e-4)


def test_bench_train_epoch(benchmark, bench_scale, hot_network, hot_batch):
    """One substitute training epoch at the bench scale."""
    rng = np.random.default_rng(BENCH_SEED + 1)
    n = min(bench_scale.train_total, 1024)
    x = rng.random((n, hot_network.input_dim))
    y = rng.integers(0, 2, size=n)
    network = SubstituteModel.for_scale(bench_scale, random_state=11).network
    trainer = Trainer(network, optimizer=Adam(learning_rate=1e-3),
                      batch_size=bench_scale.batch_size, epochs=1,
                      random_state=3)
    history = benchmark.pedantic(lambda: trainer.fit(x, y), rounds=3, iterations=1)
    assert history.epochs_run == 1


def test_bench_context_warm_vs_cold(tmp_path):
    """A warm-cache context build is >= 5x faster than the cold build."""
    cache = ArtifactCache(tmp_path / "cache")

    def build(seed_context: ExperimentContext) -> None:
        _ = seed_context.corpus
        _ = seed_context.target_model
        _ = seed_context.substitute_model

    start = time.perf_counter()
    build(ExperimentContext(scale=TINY_PROFILE, seed=BENCH_SEED, cache=cache))
    cold = time.perf_counter() - start

    start = time.perf_counter()
    build(ExperimentContext(scale=TINY_PROFILE, seed=BENCH_SEED, cache=cache))
    warm = time.perf_counter() - start

    speedup = cold / warm
    _record("context_build_tiny", cold_s=cold, warm_s=warm, speedup=speedup)
    print(f"\ncontext build: cold {cold:.2f} s, warm {warm:.3f} s, "
          f"speedup {speedup:.1f}x")
    assert speedup >= 5.0
