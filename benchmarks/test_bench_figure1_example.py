"""Bench: regenerate Figure 1 (crafting one adversarial example)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_figure1_example(benchmark, bench_context, results_dir):
    result = run_once(benchmark,
                      lambda: run_experiment("figure1", bench_context, n_added_features=2))
    rendered = result.render()
    save_rendering(results_dir, "figure1_example", rendered)
    print("\n" + rendered)
    assert result.original_prediction == 1
    assert len(result.added_apis) <= 2
    assert (result.adversarial_malware_confidence
            <= result.original_malware_confidence)
