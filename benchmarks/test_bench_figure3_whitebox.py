"""Bench: regenerate Figure 3 (white-box security evaluation curves).

Qualitative checks mirror Section III-A: the detection rate collapses as the
attack strength grows (towards ~0.1 at θ=0.1, γ=0.025 in the paper), while
randomly adding the same number of features leaves detection unchanged.
"""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_figure3_whitebox(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("figure3", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "figure3_whitebox", rendered)
    print("\n" + rendered)

    gamma_rates = result.gamma_curve.detection_rates("target")
    theta_rates = result.theta_curve.detection_rates("target")
    # curves start at the no-attack baseline and collapse with strength
    assert gamma_rates[0] == result.baseline_detection_rate
    assert gamma_rates[-1] < 0.5 * gamma_rates[0]
    assert theta_rates[-1] < 0.5 * theta_rates[0]
    # at the paper's operating point most malware evades
    assert result.operating_point_detection() < 0.4
    # the random-addition control stays near the baseline
    assert result.attack_beats_random()
    random_rates = result.random_gamma_curve.detection_rates("target")
    assert min(random_rates) > result.baseline_detection_rate - 0.15
