"""Serving-layer benchmarks: micro-batched vs single-request scoring.

Measures the scoring service on the ``small`` profile (the CI benchmark
scale) over a mixed clean/malware stream:

* **single-request path** — one fused ``predict_proba`` call per request
  (batch of one), the cost an unbatched online endpoint pays;
* **micro-batched path** — requests accumulated by the
  :class:`~repro.serving.batcher.MicroBatcher` and scored in fused batches.

Two request shapes are measured: pre-featurised vectors (the pure engine
scoring path, where batching shines) and raw API logs (which add the
per-log featurisation cost to both paths).  Measured throughput and
latency quantiles are recorded in ``BENCH_serving.json`` at the repository
root; the batched/single speedup on the featurised path is asserted ≥ 5×.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED

from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix

BENCH_JSON = Path(__file__).parents[1] / "BENCH_serving.json"

#: Requests per measured replay (large enough for stable quantiles).
N_REQUESTS = 512

#: Fused-batch size for the micro-batched path.
BATCH_SIZE = 128

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


@pytest.fixture(scope="module")
def servable(bench_context, bench_cache):
    """The served target bundle (warm-started from the benchmark cache)."""
    return ModelRegistry(cache=bench_cache).get("target", context=bench_context)


@pytest.fixture(scope="module")
def log_requests(bench_context):
    """A deterministic clean/malware log stream (full featurisation path)."""
    generator = LoadGenerator(bench_context, mix=TrafficMix(0.5, 0.5, 0.0),
                              seed=BENCH_SEED)
    return generator.generate(N_REQUESTS)


@pytest.fixture(scope="module")
def feature_requests(servable, log_requests):
    """The same stream pre-featurised (the pure engine scoring path)."""
    from repro.serving import ScoringRequest

    rows = servable.pipeline.transform([request.payload
                                        for request in log_requests])
    return [ScoringRequest(request_id=log_requests[index].request_id,
                           payload=rows[index])
            for index in range(rows.shape[0])]


def _measure_single(servable, requests, repeats: int = 3):
    """Best-of single-request replay: (elapsed_s, verdicts, report)."""
    best = None
    for _ in range(repeats):
        service = ScoringService(servable)
        start = time.perf_counter()
        verdicts = [service.score(request) for request in requests]
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, verdicts, service.report(elapsed))
    return best


def _measure_batched(servable, requests, repeats: int = 3):
    """Best-of micro-batched replay: (elapsed_s, verdicts, report)."""
    best = None
    for _ in range(repeats):
        service = ScoringService(servable, max_batch_size=BATCH_SIZE)
        start = time.perf_counter()
        verdicts = []
        for request in requests:
            verdicts.extend(service.submit(request))
        verdicts.extend(service.drain())
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, verdicts, service.report(elapsed))
    return best


def test_bench_batched_vs_single_feature_path(servable, feature_requests):
    """Micro-batching wins ≥ 5× on the pure scoring path (small profile)."""
    single_s, single_verdicts, single_report = _measure_single(
        servable, feature_requests)
    batched_s, batched_verdicts, batched_report = _measure_batched(
        servable, feature_requests)
    assert [v.label for v in batched_verdicts] == \
           [v.label for v in single_verdicts]

    speedup = single_s / batched_s
    _record("serving_feature_path",
            n_requests=len(feature_requests), batch_size=BATCH_SIZE,
            single_rps=single_report.requests_per_s,
            batched_rps=batched_report.requests_per_s,
            single_p50_ms=single_report.p50_ms,
            single_p95_ms=single_report.p95_ms,
            batched_p50_ms=batched_report.p50_ms,
            batched_p95_ms=batched_report.p95_ms,
            speedup=speedup)
    print(f"\nfeature path: single {single_report.requests_per_s:,.0f} req/s, "
          f"batched {batched_report.requests_per_s:,.0f} req/s, "
          f"speedup {speedup:.1f}x")
    # Acceptance: batched throughput >= 5x single-request throughput.
    assert speedup >= 5.0


def test_bench_batched_vs_single_log_path(servable, log_requests):
    """End-to-end log scoring also gains from batching (featurisation rides
    along in both paths, so the ratio is smaller than the pure engine win)."""
    single_s, _, single_report = _measure_single(servable, log_requests)
    batched_s, _, batched_report = _measure_batched(servable, log_requests)
    speedup = single_s / batched_s
    _record("serving_log_path",
            n_requests=len(log_requests), batch_size=BATCH_SIZE,
            single_rps=single_report.requests_per_s,
            batched_rps=batched_report.requests_per_s,
            batched_p50_ms=batched_report.p50_ms,
            batched_p95_ms=batched_report.p95_ms,
            speedup=speedup)
    print(f"\nlog path: single {single_report.requests_per_s:,.0f} req/s, "
          f"batched {batched_report.requests_per_s:,.0f} req/s, "
          f"speedup {speedup:.1f}x")
    assert speedup > 1.05


def test_bench_serving_verdicts_match_direct_path(servable, log_requests):
    """Service verdicts are identical to pipeline+predict at bench scale."""
    logs = [request.payload for request in log_requests]
    direct = servable.model.predict(servable.pipeline.transform(logs))
    service = ScoringService(servable, max_batch_size=BATCH_SIZE)
    verdicts = []
    for request in log_requests:
        verdicts.extend(service.submit(request))
    verdicts.extend(service.drain())
    by_id = {verdict.request_id: verdict.label for verdict in verdicts}
    observed = [by_id[request.request_id] for request in log_requests]
    mismatches = int(np.sum(np.asarray(observed) != direct))
    _record("serving_verdict_parity",
            n_requests=len(log_requests), mismatches=mismatches)
    assert mismatches == 0
