"""Bench: run the Figure 2 black-box attack framework end to end."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_figure2_blackbox(benchmark, bench_context, results_dir):
    result = run_once(benchmark,
                      lambda: run_experiment("figure2", bench_context,
                                             augmentation_rounds=2))
    rendered = result.render()
    save_rendering(results_dir, "figure2_blackbox", rendered)
    print("\n" + rendered)
    assert result.report.oracle_queries > 0
    assert result.report.substitute_agreement > 0.6
    # the black-box attack must be weaker than (or at best equal to) the
    # white-box attack but still reduce detection below the clean baseline
    assert result.target_detection_rate <= result.baseline_detection_rate
