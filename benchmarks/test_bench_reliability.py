"""Chaos soak benchmark: the serving stack under a deterministic fault plan.

Replays one request stream through a 2-replica :class:`WorkerFleet` twice —
fault-free, then under a :class:`~repro.reliability.faults.FaultPlan`
injecting a replica crash, a flush exception and a latency spike — and
asserts the dependability contract exactly:

* the chaos run completes the full stream with **zero lost** and **zero
  duplicated** verdicts;
* every verdict is scored (no shed, no error), labels and provenance are
  byte-identical to the fault-free run, and probabilities are
  byte-identical for every request that was *not* redispatched — a
  redispatched request is rescored inside a different fused batch, and
  BLAS accumulation order makes float64 matmul results batch-composition
  dependent at the last ulp, so those few carry a bounded (< 1e-12)
  rescoring delta rather than byte equality;
* the :class:`~repro.reliability.report.ReliabilityReport` counters match
  the plan exactly (1 restart, 1 flush retry, the planned faults fired).

Two companion soaks cover the remaining fault classes: a circuit-breaker
load-shed scenario on a single service (deterministic shed count) and a
stale cache-lock sweep (a killed lock holder must not stall the next
builder).  Measured recovery overhead (p99 delta, wall-clock delta, sweep
latency) lands in ``BENCH_reliability.json`` at the repository root.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import BENCH_SEED

from repro.parallel import WorkerFleet
from repro.reliability import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)
from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix

BENCH_JSON = Path(__file__).parents[1] / "BENCH_reliability.json"

#: Requests per soak replay (large enough that both replicas stay busy).
N_REQUESTS = 256

#: Per-replica fused-batch size.
BATCH_SIZE = 16

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


@pytest.fixture(scope="module")
def servable(bench_context, bench_cache):
    return ModelRegistry(cache=bench_cache).get("target", context=bench_context)


@pytest.fixture(scope="module")
def feature_requests(servable, bench_context):
    """A deterministic pre-featurised mixed stream (pure scoring path)."""
    from repro.serving import ScoringRequest

    generator = LoadGenerator(bench_context, mix=TrafficMix(0.5, 0.5, 0.0),
                              seed=BENCH_SEED)
    logs = generator.generate(N_REQUESTS)
    rows = servable.pipeline.transform([request.payload for request in logs])
    return [ScoringRequest(request_id=logs[index].request_id,
                           payload=rows[index])
            for index in range(rows.shape[0])]


def _chaos_plan() -> FaultPlan:
    """One replica crash + one flush exception + one latency spike."""
    return FaultPlan(specs=(
        FaultSpec(site="fleet.dispatch", action="crash", at=3,
                  where={"worker": 1}),
        FaultSpec(site="service.flush", action="error", at=1,
                  where={"worker": 0}),
        FaultSpec(site="service.flush", action="delay", at=2, delay_ms=25.0,
                  where={"worker": 0}),
    ))


def test_bench_chaos_soak_fleet(bench_context, feature_requests):
    """Fleet under crash + flush-error + latency-spike: exact recovery."""
    clean_fleet = WorkerFleet(n_workers=2, context=bench_context,
                              max_batch_size=BATCH_SIZE)
    clean_verdicts, clean_report = clean_fleet.score_stream(
        list(feature_requests))

    chaos_fleet = WorkerFleet(
        n_workers=2, context=bench_context, max_batch_size=BATCH_SIZE,
        restart_budget=2, fault_plan=_chaos_plan(),
        retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.01,
                                 seed=BENCH_SEED))
    chaos_verdicts, chaos_report = chaos_fleet.score_stream(
        list(feature_requests))

    # Zero lost, zero duplicated: the full stream came back, in order.
    assert len(chaos_verdicts) == N_REQUESTS
    assert [v.request_id for v in chaos_verdicts] == \
           [v.request_id for v in clean_verdicts]
    # Every verdict was actually scored; labels and provenance are
    # byte-identical to the fault-free float64 run.
    assert all(v.status == "ok" for v in chaos_verdicts)
    assert [v.label for v in chaos_verdicts] == \
           [v.label for v in clean_verdicts]
    assert [v.verdict for v in chaos_verdicts] == \
           [v.verdict for v in clean_verdicts]
    assert [v.model_version for v in chaos_verdicts] == \
           [v.model_version for v in clean_verdicts]
    # Probabilities are byte-identical except for redispatched requests,
    # which were rescored inside a different fused batch (float64 matmul is
    # batch-composition dependent at the last ulp); those deltas stay
    # bounded at rounding noise and can never flip a label (asserted above).
    prob_deltas = [abs(ours.malware_probability - theirs.malware_probability)
                   for ours, theirs in zip(chaos_verdicts, clean_verdicts)]
    inexact = sum(delta != 0.0 for delta in prob_deltas)
    reliability = chaos_report.reliability
    assert inexact <= reliability.redispatches
    assert max(prob_deltas) < 1e-12

    # The counters must match the plan exactly — the dependability claim.
    assert reliability.lost == 0
    assert reliability.duplicates == 0
    assert reliability.restarts == 1
    assert reliability.flush_retries == 1
    assert reliability.redispatches >= 1
    assert reliability.faults == {"fleet.dispatch": 1, "service.flush": 2}
    assert clean_report.reliability.empty()

    p99_delta = chaos_report.throughput.p99_ms - clean_report.throughput.p99_ms
    _record("reliability_chaos_fleet",
            n_requests=N_REQUESTS, n_workers=2, batch_size=BATCH_SIZE,
            restarts=reliability.restarts,
            redispatches=reliability.redispatches,
            flush_retries=reliability.flush_retries,
            duplicates=reliability.duplicates, lost=reliability.lost,
            faults_fired=sum(reliability.faults.values()),
            inexact_rescored=inexact,
            # Scientific notation: the interesting magnitude (~1e-17) would
            # vanish under the helper's 6-decimal-place rounding.
            max_prob_delta=f"{max(prob_deltas):.3e}",
            clean_rps=clean_report.throughput.requests_per_s,
            chaos_rps=chaos_report.throughput.requests_per_s,
            clean_p99_ms=clean_report.throughput.p99_ms,
            chaos_p99_ms=chaos_report.throughput.p99_ms,
            p99_delta_ms=p99_delta)
    print(f"\nchaos fleet: {chaos_report.throughput.requests_per_s:,.0f} req/s "
          f"(clean {clean_report.throughput.requests_per_s:,.0f}), "
          f"p99 delta {p99_delta:+.3f}ms, "
          f"{reliability.restarts} restart / "
          f"{reliability.redispatches} redispatches / 0 lost / 0 dup")


def test_bench_breaker_sheds_deterministically(servable, feature_requests):
    """An open circuit breaker sheds load instead of queueing past the SLO."""
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=3600.0)
    plan = FaultPlan(specs=(
        FaultSpec(site="service.flush", action="error", at=1),))
    service = ScoringService(servable, max_batch_size=BATCH_SIZE,
                             circuit_breaker=breaker,
                             injector=plan.injector())
    start = time.perf_counter()
    verdicts = []
    with pytest.raises(InjectedFault):
        for request in feature_requests:
            verdicts.extend(service.submit(request))
    # The failed flush tripped the breaker: every later submission sheds.
    for request in feature_requests[len(verdicts) + BATCH_SIZE:]:
        verdicts.extend(service.submit(request))
    verdicts.extend(service.drain())
    elapsed = time.perf_counter() - start

    sheds = sum(verdict.status == "shed" for verdict in verdicts)
    scored = sum(verdict.status == "ok" for verdict in verdicts)
    assert sheds == N_REQUESTS - BATCH_SIZE  # all post-trip arrivals
    assert scored == BATCH_SIZE              # the restored batch, drained
    assert service.reliability.sheds == sheds
    assert service.reliability.breaker_trips == 1
    shed_rate = sheds / N_REQUESTS
    _record("reliability_breaker_shed",
            n_requests=N_REQUESTS, batch_size=BATCH_SIZE,
            sheds=sheds, scored=scored, shed_rate=shed_rate,
            breaker_trips=service.reliability.breaker_trips,
            elapsed_s=elapsed)
    print(f"\nbreaker shed: {sheds}/{N_REQUESTS} shed "
          f"({shed_rate:.1%}), {scored} scored after drain")


def test_bench_stale_lock_sweep(tmp_path, monkeypatch):
    """A killed lock holder is swept immediately, not waited out."""
    import repro.utils.artifact_cache as artifact_cache_module

    # Force the portable O_EXCL spin path (flock releases with its holder).
    monkeypatch.setattr(artifact_cache_module, "fcntl", None)
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True)
    dead_pid = int(probe.stdout.strip())

    cache = artifact_cache_module.ArtifactCache(tmp_path, lock_timeout_s=600.0)
    key = cache.key_for("soak", seed=BENCH_SEED)
    lock_path = cache.root / "soak" / f"{key}.lock"
    lock_path.parent.mkdir(parents=True)
    lock_path.write_text(str(dead_pid), encoding="ascii")

    start = time.perf_counter()
    payload = cache.load_or_build(
        "soak", key, lambda: {"seed": BENCH_SEED},
        lambda value, path: (path / "value.json").write_text(
            json.dumps(value), encoding="utf-8"),
        lambda path: json.loads((path / "value.json").read_text(
            encoding="utf-8")))
    sweep_s = time.perf_counter() - start

    assert payload == {"seed": BENCH_SEED}
    assert cache.n_stale_locks_swept == 1
    assert sweep_s < 5.0  # regression bound: used to stall lock_timeout_s
    _record("reliability_stale_lock_sweep",
            stale_locks_swept=cache.n_stale_locks_swept,
            lock_timeout_s=cache.lock_timeout_s,
            sweep_s=sweep_s)
    print(f"\nstale lock swept in {sweep_s * 1000.0:.1f}ms "
          f"(timeout would have been {cache.lock_timeout_s:.0f}s)")
