"""Benchmark the declarative scenario engine on a small attack x defense grid.

Runs ``ScenarioSpec.grid`` (2 attacks x 2 defenses, grey-box crafting at the
Table VI operating point) through :func:`repro.scenarios.run_scenario`
against the shared bench context and records per-cell and whole-grid
wall-times to ``BENCH_scenarios.json`` at the repository root — the measured
cost of "one grid cell" that consumers of the scenario API (sweeps, serving,
CI smoke) can budget against.

The grid also asserts the engine's reuse contracts: defense fits are
memoised per context (the second cell referencing a defense must not refit
it) and the canonical grey-box JSMA set is crafted once and shared.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import BENCH_SEED, run_once, save_rendering

from repro.evaluation.reports import format_table
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.registry import build_defense

BENCH_JSON = Path(__file__).parents[1] / "BENCH_scenarios.json"

_records: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def _grid_specs(scale_name: str) -> list:
    return ScenarioSpec.grid(
        attacks=[{"id": "jsma", "params": {"early_stop": False}},
                 "random_addition"],
        defenses=["none", "feature_squeezing"],
        model="substitute", scale=scale_name, seed=BENCH_SEED,
        theta=0.1, gamma=0.02)


def test_bench_scenario_grid(benchmark, bench_context, results_dir):
    """Wall-time of a 2x2 attack x defense grid through run_scenario."""
    context = bench_context
    # Warm the shared artifacts outside the measured region so the grid
    # numbers measure the scenario engine, not corpus/model training.
    _ = context.target_model, context.substitute_model, context.attack_malware

    specs = _grid_specs(context.scale.name)
    cell_times: dict = {}
    reports: dict = {}

    def run_grid():
        for spec in specs:
            started = time.perf_counter()
            reports[spec.label] = run_scenario(spec, context=context)
            cell_times[spec.label] = time.perf_counter() - started
        return reports

    run_once(benchmark, run_grid)
    total = sum(cell_times.values())

    # Reuse contracts: the defended cells share one memoised squeezing fit,
    # and jsma cells share the canonical cached grey-box advEx set.
    squeezed = build_defense("feature_squeezing", context)
    assert build_defense("feature_squeezing", context) is squeezed
    jsma_reports = [r for label, r in reports.items() if label.startswith("jsma")]
    assert all(r.attack_result is not None for r in jsma_reports)

    rows = [[label, f"{elapsed:.3f}"] for label, elapsed in cell_times.items()]
    rows.append(["grid total", f"{total:.3f}"])
    save_rendering(results_dir, "scenario_grid",
                   format_table(["scenario", "seconds"], rows,
                                title=f"scenario grid wall-time "
                                      f"(scale={context.scale.name}, "
                                      f"seed={BENCH_SEED})"))

    _records["scenario_grid"] = {
        "scale": context.scale.name,
        "seed": BENCH_SEED,
        "n_cells": len(specs),
        "cells_s": {label: round(elapsed, 6)
                    for label, elapsed in cell_times.items()},
        "total_s": round(total, 6),
    }

    # Sanity: the structured attack beats the random control on the target.
    jsma_rate = reports["jsma vs none"].detection["target"]
    random_rate = reports["random_addition vs none"].detection["target"]
    assert jsma_rate < random_rate
