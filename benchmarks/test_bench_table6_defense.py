"""Bench: regenerate Table VI (defense testing results).

Qualitative checks mirror Section III-C:

* without a defense most grey-box adversarial examples evade the detector;
* adversarial training recovers adversarial detection without sacrificing
  the clean TNR or the original-malware TPR;
* the PCA dimensionality-reduction defense also recovers adversarial
  detection (in the paper at the cost of clean accuracy).
"""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table6_defense(benchmark, bench_context, results_dir):
    result = run_once(benchmark,
                      lambda: run_experiment("table6", bench_context,
                                             include_ensemble=True))
    rendered = result.render()
    save_rendering(results_dir, "table6_defense", rendered)
    print("\n" + rendered)

    # no defense: the attack works
    assert result.rate("no_defense", "advex_test", "tpr") < 0.5
    # adversarial training: the paper's headline defense result
    assert result.adversarial_training_recovers_detection(margin=0.2)
    assert result.adversarial_training_preserves_clean(tolerance=0.05)
    assert result.rate("adversarial_training", "malware_test", "tpr") > 0.6
    # dimensionality reduction recovers adversarial detection
    assert (result.rate("dim_reduction", "advex_test", "tpr")
            > result.rate("no_defense", "advex_test", "tpr"))
    # feature squeezing flags more adversarial examples than the bare model
    assert (result.rate("feature_squeezing", "advex_test", "tpr")
            >= result.rate("no_defense", "advex_test", "tpr"))
