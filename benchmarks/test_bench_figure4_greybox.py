"""Bench: regenerate Figure 4 (grey-box security evaluation curves).

Qualitative checks mirror Section III-B: substitute-crafted examples
transfer to the target (its detection rate drops well below the no-attack
baseline), the grey-box attack is weaker than the white-box attack, and the
binary-feature substitute (less feature knowledge) transfers far worse than
the exact-feature substitute.
"""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_figure4_greybox(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("figure4", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "figure4_greybox", rendered)
    print("\n" + rendered)

    baseline = result.baseline_detection_rate
    target_rates = result.gamma_curve.detection_rates("target")
    substitute_rates = result.gamma_curve.detection_rates("substitute")

    # the attack fools the substitute it was crafted on, and transfers
    assert min(substitute_rates) < 0.3
    assert min(target_rates) < baseline - 0.3
    # grey-box is weaker than (or equal to) the attack on the substitute itself
    assert min(target_rates) >= min(substitute_rates) - 0.05
    # binary-feature substitute: fooled itself, but transfers much worse
    binary_substitute_rates = result.binary_gamma_curve.detection_rates("substitute")
    binary_target_rates = result.binary_gamma_curve.detection_rates("target")
    assert min(binary_substitute_rates) < 0.3
    assert min(binary_target_rates) > min(target_rates)
    assert result.count_attack_transfers_better_than_binary()
