"""Observability overhead benchmark: instrumented vs plain serving.

Replays the same pre-featurised request stream through the micro-batched
scoring path with instrumentation off, metrics-only and metrics+sink, and
replays a raw request stream through a two-worker :class:`WorkerFleet`
plain, fully traced and trace-sampled — recording every throughput ratio
in ``BENCH_observability.json``.

Measurement discipline (this box is a noisy shared container; naive
back-to-back timing swings ±20%):

* **ABBA blocks** — each block runs the variants in a palindromic order
  (``plain, armed, …, armed, plain``), so any linear machine-level drift
  (CPU frequency shifts, a co-tenant ramping up) contributes equally to
  both sides of the block ratio and cancels.
* **min of block ratios** — noise only ever *adds* time, so the smallest
  armed/plain ratio across blocks is the least-contaminated estimate; a
  true regression floors every block above the gate, while a single
  stomped-on block cannot fail the build.
* **CPU time for the single-process gate** — ``time.process_time`` is
  immune to scheduler preemption (observed spread ~1.5% vs ~20% for
  wall clock).  The fleet gate must use wall clock (the work happens in
  child processes), which is what the blocks and the min are for.

Acceptance: armed instrumentation and *production* tracing (head-based
sampling, see :class:`~repro.obs.spans.TraceStamper`) each keep ≥ 95% of
the plain path's throughput, and the verdict stream is byte-identical —
the observability plane never touches the data plane.  Full-fidelity
tracing (every request, four spans plus cross-process event transport)
costs tens of microseconds per request and is recorded honestly as the
debugging/chaos-soak mode, not gated: on a ~100 µs/request fleet path it
can never fit a 5% budget, which is exactly why the sampling knob exists.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import BENCH_SEED

from repro.obs import Instrumentation, ListSink, SpanCollector
from repro.parallel import WorkerFleet
from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix

BENCH_JSON = Path(__file__).parents[1] / "BENCH_observability.json"

#: Requests per measured single-process replay.
N_REQUESTS = 4096

#: Requests per measured fleet replay (wall-clock ~150 ms — long enough
#: that per-stream fixed costs do not dominate the ratio).
N_FLEET = 1024

#: Fused-batch size for the micro-batched path.
BATCH_SIZE = 128

#: ABBA blocks per gate.
BLOCKS = 4

#: Production trace-sampling rate used for the gated tracing variant
#: (1-in-32 keeps the true per-trace cost well under the block-ratio
#: noise floor of this shared box, ~±4%).
SAMPLE_EVERY = 32

#: Maximum tolerated throughput cost of arming instrumentation.
MAX_OVERHEAD = 0.05

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


@pytest.fixture(scope="module")
def servable(bench_context, bench_cache):
    """The served target bundle (warm-started from the benchmark cache)."""
    return ModelRegistry(cache=bench_cache).get("target", context=bench_context)


@pytest.fixture(scope="module")
def feature_requests(bench_context, servable):
    """A deterministic pre-featurised stream (the pure batched path)."""
    from repro.serving import ScoringRequest

    generator = LoadGenerator(bench_context, mix=TrafficMix(0.5, 0.5, 0.0),
                              seed=BENCH_SEED)
    log_requests = generator.generate(N_REQUESTS)
    rows = servable.pipeline.transform([request.payload
                                        for request in log_requests])
    return [ScoringRequest(request_id=log_requests[index].request_id,
                           payload=rows[index])
            for index in range(rows.shape[0])]


@pytest.fixture(scope="module")
def fleet_rows(feature_requests):
    """Raw feature rows for the fleet replays (ids auto-assigned in order,
    so every variant scores the identical stream)."""
    return [request.payload for request in feature_requests[:N_FLEET]]


def _replay_once(servable, requests, make_obs):
    """One micro-batched replay: (cpu_s, wall_s, verdicts, report, obs)."""
    obs = make_obs()
    service = ScoringService(servable, max_batch_size=BATCH_SIZE,
                             instrumentation=obs)
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    verdicts = []
    for request in requests:
        verdicts.extend(service.submit(request))
    verdicts.extend(service.drain())
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    return cpu, verdicts, service.report(wall), obs


def _abba_blocks(run_plain, armed, blocks: int = BLOCKS):
    """Palindromic interleave: per block, plain brackets the armed runs.

    Returns ``(ratios, last)`` where ``ratios[name]`` holds one armed/plain
    elapsed-time ratio per block (drift-cancelling: each variant's two runs
    in a block sit symmetrically around the block's midpoint) and ``last``
    keeps each variant's most recent full result for identity checks.
    """
    names = list(armed)
    schedule = names + names[::-1]          # p a b | b a p  (p = bracket)
    ratios = {name: [] for name in names}
    last = {}
    last["plain"] = run_plain()             # warm-up: interpreter + caches
    for name in names:
        last[name] = armed[name]()
    for _ in range(blocks):
        elapsed = {name: 0.0 for name in names}
        plain_elapsed = 0.0
        result = run_plain()
        plain_elapsed += result[0]
        last["plain"] = result
        for name in schedule:
            result = armed[name]()
            elapsed[name] += result[0]
            last[name] = result
        result = run_plain()
        plain_elapsed += result[0]
        last["plain"] = result
        for name in names:
            # Two armed runs over two plain runs: the block ratio.
            ratios[name].append(elapsed[name] / plain_elapsed)
    return ratios, last


def _min_overhead(ratios) -> float:
    """The least-contaminated overhead estimate: min block ratio − 1."""
    return min(ratios) - 1.0


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    return (ordered[mid] if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0)


def _decisions(verdicts):
    """Verdict payloads minus latency_ms (a measurement, not a decision)."""
    return [{key: value for key, value in verdict.as_dict().items()
             if key != "latency_ms"} for verdict in verdicts]


def test_bench_instrumentation_overhead(servable, feature_requests):
    """Armed instrumentation costs ≤ 5% throughput on the batched path."""
    ratios, last = _abba_blocks(
        lambda: _replay_once(servable, feature_requests, lambda: None),
        {
            "metrics": lambda: _replay_once(servable, feature_requests,
                                            Instrumentation),
            "sink": lambda: _replay_once(
                servable, feature_requests,
                lambda: Instrumentation(sink=ListSink(max_events=8192))),
        })
    _, plain_verdicts, plain_report, _ = last["plain"]
    _, metrics_verdicts, _, _ = last["metrics"]
    _, sink_verdicts, _, _ = last["sink"]

    # Instrumentation observes the data plane without touching it: every
    # decision field must be byte-identical to the plain run.
    plain_payloads = _decisions(plain_verdicts)
    assert _decisions(metrics_verdicts) == plain_payloads
    assert _decisions(sink_verdicts) == plain_payloads

    metrics_overhead = _min_overhead(ratios["metrics"])
    sink_overhead = _min_overhead(ratios["sink"])
    _record("observability_overhead",
            n_requests=len(feature_requests), batch_size=BATCH_SIZE,
            blocks=BLOCKS,
            plain_rps=plain_report.requests_per_s,
            metrics_overhead=metrics_overhead,
            metrics_overhead_median=_median(ratios["metrics"]) - 1.0,
            sink_overhead=sink_overhead,
            sink_overhead_median=_median(ratios["sink"]) - 1.0,
            verdict_mismatches=0)
    print(f"\nplain {plain_report.requests_per_s:,.0f} req/s, "
          f"metrics {metrics_overhead:+.1%} "
          f"(median {_median(ratios['metrics']) - 1.0:+.1%}), "
          f"metrics+sink {sink_overhead:+.1%} "
          f"(median {_median(ratios['sink']) - 1.0:+.1%})")
    assert metrics_overhead <= MAX_OVERHEAD
    assert sink_overhead <= MAX_OVERHEAD


def test_bench_tracing_overhead(bench_context, fleet_rows):
    """Distributed tracing on the fleet: the production sampling mode is
    gated at ≤ 5%; full fidelity is measured and recorded, not gated.

    Tracing exists for the *fleet* (a request's life crosses a process
    boundary there), so that is the path it is priced on.  Each replay is
    one ``score_stream`` over the same raw rows; the fleet respawns its
    replicas per stream, identically for every variant.
    """

    def make_fleet(obs, sample_every=1):
        return WorkerFleet(n_workers=2, context=bench_context,
                           max_batch_size=BATCH_SIZE,
                           instrumentation=obs,
                           trace_sample_every=sample_every)

    def replay(fleet):
        if fleet.instrumentation is not None:
            # A fresh sink per replay: span-tree assertions must see one
            # stream's events, not an accumulation across blocks.
            fleet.instrumentation = Instrumentation(
                sink=ListSink(max_events=8 * N_FLEET))
        start = time.perf_counter()
        verdicts, report = fleet.score_stream(list(fleet_rows))
        return time.perf_counter() - start, verdicts, report

    plain_fleet = make_fleet(None)
    traced_fleet = make_fleet(Instrumentation(sink=ListSink()))
    sampled_fleet = make_fleet(Instrumentation(sink=ListSink()),
                               sample_every=SAMPLE_EVERY)
    try:
        ratios, last = _abba_blocks(
            lambda: replay(plain_fleet),
            {
                "traced": lambda: replay(traced_fleet),
                "sampled": lambda: replay(sampled_fleet),
            }, blocks=6)
    finally:
        for fleet in (plain_fleet, traced_fleet, sampled_fleet):
            fleet.close()

    _, plain_verdicts, _ = last["plain"]
    _, traced_verdicts, traced_report = last["traced"]
    _, sampled_verdicts, sampled_report = last["sampled"]

    # Tracing observes the data plane without touching it.
    plain_payloads = _decisions(plain_verdicts)
    assert _decisions(traced_verdicts) == plain_payloads
    assert _decisions(sampled_verdicts) == plain_payloads

    # Full fidelity traced every request completely...
    collector = SpanCollector()
    collector.add_snapshot(traced_report.obs)
    trees = collector.trees()
    assert len(trees) == N_FLEET
    assert collector.n_orphans == 0 and collector.n_duplicates == 0
    # ...and the sampled mode traced exactly the 1-in-N head-based subset,
    # each still a complete rooted tree.
    collector = SpanCollector()
    collector.add_snapshot(sampled_report.obs)
    sampled_trees = collector.trees()
    assert len(sampled_trees) == N_FLEET // SAMPLE_EVERY
    assert collector.n_orphans == 0
    assert all(tree.complete for tree in sampled_trees.values())

    traced_overhead = _min_overhead(ratios["traced"])
    sampled_overhead = _min_overhead(ratios["sampled"])
    _record("tracing_overhead",
            n_requests=N_FLEET, n_workers=2, batch_size=BATCH_SIZE,
            blocks=len(ratios["sampled"]), sample_every=SAMPLE_EVERY,
            sampled_overhead=sampled_overhead,
            sampled_overhead_median=_median(ratios["sampled"]) - 1.0,
            full_fidelity_overhead=traced_overhead,
            full_fidelity_overhead_median=_median(ratios["traced"]) - 1.0,
            n_traces_full=N_FLEET,
            n_traces_sampled=len(sampled_trees),
            n_orphans=0, verdict_mismatches=0)
    print(f"\nfleet tracing: sampled 1/{SAMPLE_EVERY} {sampled_overhead:+.1%} "
          f"(median {_median(ratios['sampled']) - 1.0:+.1%}), "
          f"full fidelity {traced_overhead:+.1%} "
          f"(median {_median(ratios['traced']) - 1.0:+.1%}), "
          f"{len(trees)} + {len(sampled_trees)} complete traces")
    assert sampled_overhead <= MAX_OVERHEAD


def test_bench_off_by_default_costs_nothing_extra(servable, feature_requests):
    """The uninstrumented service carries only a dormant `is None` check;
    two plain replays bound the measurement noise floor for the table."""
    ratios, last = _abba_blocks(
        lambda: _replay_once(servable, feature_requests, lambda: None),
        {"plain_again": lambda: _replay_once(servable, feature_requests,
                                             lambda: None)},
        blocks=2)
    noise = abs(_min_overhead(ratios["plain_again"]))
    _record("observability_noise_floor",
            plain_rps=last["plain"][2].requests_per_s,
            run_to_run_noise=noise)
    print(f"\nrun-to-run noise floor: {noise:.1%}")
