"""Observability overhead benchmark: instrumented vs plain serving.

Replays the same pre-featurised request stream through the micro-batched
scoring path three ways — no instrumentation, metrics-only
instrumentation, and instrumentation with a bounded event sink — and
records the throughput ratio of each instrumented variant against the
plain baseline in ``BENCH_observability.json``.

Acceptance: the instrumented batched path keeps ≥ 95% of the plain
path's throughput (≤ 5% overhead), and the verdict stream is
byte-identical — instrumentation observes the data plane, it never
touches it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import BENCH_SEED

from repro.obs import Instrumentation, ListSink
from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix

BENCH_JSON = Path(__file__).parents[1] / "BENCH_observability.json"

#: Requests per measured replay (matches the serving benchmark).
N_REQUESTS = 512

#: Fused-batch size for the micro-batched path.
BATCH_SIZE = 128

#: Best-of repeats per variant (de-flakes the ratio).
REPEATS = 5

#: Maximum tolerated throughput cost of arming instrumentation.
MAX_OVERHEAD = 0.05

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


@pytest.fixture(scope="module")
def servable(bench_context, bench_cache):
    """The served target bundle (warm-started from the benchmark cache)."""
    return ModelRegistry(cache=bench_cache).get("target", context=bench_context)


@pytest.fixture(scope="module")
def feature_requests(bench_context, servable):
    """A deterministic pre-featurised stream (the pure batched path)."""
    from repro.serving import ScoringRequest

    generator = LoadGenerator(bench_context, mix=TrafficMix(0.5, 0.5, 0.0),
                              seed=BENCH_SEED)
    log_requests = generator.generate(N_REQUESTS)
    rows = servable.pipeline.transform([request.payload
                                        for request in log_requests])
    return [ScoringRequest(request_id=log_requests[index].request_id,
                           payload=rows[index])
            for index in range(rows.shape[0])]


def _measure_batched(servable, requests, make_obs, repeats: int = REPEATS):
    """Best-of micro-batched replay: (elapsed_s, verdicts, report)."""
    best = None
    for _ in range(repeats):
        service = ScoringService(servable, max_batch_size=BATCH_SIZE,
                                 instrumentation=make_obs())
        start = time.perf_counter()
        verdicts = []
        for request in requests:
            verdicts.extend(service.submit(request))
        verdicts.extend(service.drain())
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, verdicts, service.report(elapsed))
    return best


def test_bench_instrumentation_overhead(servable, feature_requests):
    """Armed instrumentation costs ≤ 5% throughput on the batched path."""
    _measure_batched(servable, feature_requests, lambda: None,
                     repeats=1)  # warm-up: caches, allocator, code paths
    plain_s, plain_verdicts, plain_report = _measure_batched(
        servable, feature_requests, lambda: None)
    metrics_s, metrics_verdicts, metrics_report = _measure_batched(
        servable, feature_requests, Instrumentation)
    sink_s, sink_verdicts, sink_report = _measure_batched(
        servable, feature_requests,
        lambda: Instrumentation(sink=ListSink(max_events=8192)))

    # Instrumentation observes the data plane without touching it: every
    # decision field must be byte-identical to the plain run (latency_ms
    # is wall-clock measurement, not a decision, so it varies per replay).
    def decisions(verdicts):
        return [{key: value for key, value in verdict.as_dict().items()
                 if key != "latency_ms"} for verdict in verdicts]

    plain_payloads = decisions(plain_verdicts)
    assert decisions(metrics_verdicts) == plain_payloads
    assert decisions(sink_verdicts) == plain_payloads

    metrics_overhead = plain_report.requests_per_s / \
        metrics_report.requests_per_s - 1.0
    sink_overhead = plain_report.requests_per_s / \
        sink_report.requests_per_s - 1.0
    _record("observability_overhead",
            n_requests=len(feature_requests), batch_size=BATCH_SIZE,
            plain_rps=plain_report.requests_per_s,
            metrics_rps=metrics_report.requests_per_s,
            sink_rps=sink_report.requests_per_s,
            metrics_overhead=metrics_overhead,
            sink_overhead=sink_overhead,
            verdict_mismatches=0)
    print(f"\nplain {plain_report.requests_per_s:,.0f} req/s, "
          f"metrics {metrics_report.requests_per_s:,.0f} req/s "
          f"({metrics_overhead:+.1%}), "
          f"metrics+sink {sink_report.requests_per_s:,.0f} req/s "
          f"({sink_overhead:+.1%})")
    assert metrics_overhead <= MAX_OVERHEAD
    assert sink_overhead <= MAX_OVERHEAD


def test_bench_off_by_default_costs_nothing_extra(servable, feature_requests):
    """The uninstrumented service carries only a dormant `is None` check;
    two plain replays bound the measurement noise floor for the table."""
    first_s, _, first_report = _measure_batched(
        servable, feature_requests, lambda: None, repeats=3)
    second_s, _, second_report = _measure_batched(
        servable, feature_requests, lambda: None, repeats=3)
    noise = abs(first_s / second_s - 1.0)
    _record("observability_noise_floor",
            plain_rps_a=first_report.requests_per_s,
            plain_rps_b=second_report.requests_per_s,
            run_to_run_noise=noise)
    print(f"\nrun-to-run noise floor: {noise:.1%}")
