"""Bench: regenerate Table II (excerpt of a sandbox log file)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table2_logs(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("table2", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "table2_logs", rendered)
    print("\n" + rendered)
    assert result.round_trips()
    assert len(result.excerpt_lines) == 10
