"""Benchmark the process-pool execution engine: serial vs parallel grids.

Runs the same 8-cell attack x defense grid through
:class:`~repro.parallel.GridExecutor` serially and with a 4-worker pool
(fork-prewarmed from the shared bench context), recording both wall-times
and their ratio to ``BENCH_parallel.json`` — plus a 2-worker
:class:`~repro.parallel.WorkerFleet` serving measurement against the
single-process service baseline.

Byte-parity of the merged reports (``to_json(include_timing=False)``) is
asserted unconditionally: a parallel grid must be indistinguishable from a
serial one under float64.  The >= 2x speedup acceptance gate only makes
physical sense with cores to spare, so it is asserted when the machine
exposes >= 4 usable CPUs (force it with ``REPRO_BENCH_REQUIRE_SPEEDUP=1``,
waive with ``=0``); the measured numbers and the CPU count are recorded
either way, so CI and laptops both leave an honest trail.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import BENCH_SEED, run_once, save_rendering

from repro.evaluation.reports import format_table
from repro.parallel import GridExecutor, WorkerFleet, available_cpus
from repro.scenarios import ScenarioSpec
from repro.serving import ModelRegistry, ScoringService

BENCH_JSON = Path(__file__).parents[1] / "BENCH_parallel.json"

GRID_WORKERS = 4
FLEET_WORKERS = 2

_records: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def _require_speedup() -> bool:
    forced = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if forced is not None:
        return forced != "0"
    return available_cpus() >= GRID_WORKERS


def _benchmark_grid(scale_name: str) -> list:
    """8 cells of comparable cost: full-budget grey-box JSMA crafting at
    four non-canonical γ budgets x 2 defenses.  Non-canonical operating
    points bypass the cached advEx artifact, so every cell performs real
    crafting work — the embarrassingly parallel load the executor shards."""
    specs = []
    for gamma in (0.025, 0.03, 0.035, 0.04):
        specs.extend(ScenarioSpec.grid(
            attacks=[{"id": "jsma", "params": {"early_stop": False}}],
            defenses=["none", "feature_squeezing"],
            model="substitute", scale=scale_name, seed=BENCH_SEED,
            theta=0.1, gamma=gamma))
    for spec_index, spec in enumerate(specs):
        specs[spec_index] = spec.with_overrides(
            label=f"{spec.label} (gamma={spec.gamma:g})")
    return specs


def test_bench_parallel_grid(benchmark, bench_context, results_dir):
    """Serial vs 4-worker wall-time on the benchmark grid + byte parity."""
    context = bench_context
    # Warm the shared artifacts outside the measured region: both execution
    # modes then measure grid execution, not corpus/model training.
    _ = context.target_model, context.substitute_model, context.attack_malware
    specs = _benchmark_grid(context.scale.name)

    serial_executor = GridExecutor(n_workers=1)
    parallel_executor = GridExecutor(n_workers=GRID_WORKERS)

    started = time.perf_counter()
    serial = serial_executor.run(specs, context=context)
    serial_s = time.perf_counter() - started

    def run_parallel():
        return parallel_executor.run(specs, context=context)

    parallel = run_once(benchmark, run_parallel)
    parallel_s = parallel.elapsed_s
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    # Determinism is non-negotiable regardless of the machine: merged
    # reports must be byte-identical to the serial baseline under float64.
    serial_docs = [r.to_json(include_timing=False) for r in serial.reports]
    parallel_docs = [r.to_json(include_timing=False) for r in parallel.reports]
    assert parallel_docs == serial_docs

    rows = [["serial (1 worker)", f"{serial_s:.3f}", ""],
            [f"parallel ({parallel.n_workers} workers, "
             f"{parallel.start_method})", f"{parallel_s:.3f}",
             f"{speedup:.2f}x"]]
    save_rendering(results_dir, "parallel_grid",
                   format_table(["execution", "seconds", "speedup"], rows,
                                title=f"grid of {len(specs)} cells "
                                      f"(scale={context.scale.name}, "
                                      f"seed={BENCH_SEED}, "
                                      f"cpus={available_cpus()})"))

    _records["parallel_grid"] = {
        "scale": context.scale.name,
        "seed": BENCH_SEED,
        "n_cells": len(specs),
        "n_workers": parallel.n_workers,
        "n_cpus": available_cpus(),
        "start_method": parallel.start_method,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(speedup, 4),
        "byte_identical_to_serial": parallel_docs == serial_docs,
        "speedup_asserted": _require_speedup(),
    }

    if _require_speedup():
        assert speedup >= 2.0, (
            f"4-worker grid should be >= 2x faster than serial on "
            f"{available_cpus()} CPUs, measured {speedup:.2f}x")


def test_bench_worker_fleet(benchmark, bench_context, results_dir):
    """2-worker fleet vs single-process service on a feature-row stream."""
    context = bench_context
    servable = ModelRegistry().get("target", context=context)
    rows = context.attack_malware.features
    stream = [rows[index % rows.shape[0]] for index in range(512)]

    single = ScoringService(servable, max_batch_size=64)
    started = time.perf_counter()
    baseline = single.score_many(list(stream))
    single_s = time.perf_counter() - started

    fleet = WorkerFleet(n_workers=FLEET_WORKERS, context=context,
                        max_batch_size=64)

    def run_fleet():
        return fleet.score_stream(list(stream))

    verdicts, report = run_once(benchmark, run_fleet)
    assert len(verdicts) == len(baseline)
    mismatches = sum(ours.label != theirs.label
                     for ours, theirs in zip(verdicts, baseline))
    assert mismatches == 0

    _records["worker_fleet"] = {
        "scale": context.scale.name,
        "seed": BENCH_SEED,
        "n_requests": len(stream),
        "n_workers": report.n_workers,
        "n_cpus": available_cpus(),
        "start_method": report.start_method,
        "single_service_s": round(single_s, 6),
        "fleet_s": round(report.throughput.elapsed_s, 6),
        "fleet_requests_per_s": round(report.throughput.requests_per_s, 2),
        "fleet_p50_ms": round(report.throughput.p50_ms, 6),
        "fleet_p99_ms": round(report.throughput.p99_ms, 6),
        "verdict_mismatches": mismatches,
    }

    save_rendering(results_dir, "worker_fleet",
                   "\n".join([f"single service: {len(stream)} requests in "
                              f"{single_s:.3f}s",
                              report.render()]))
