"""Bench: regenerate the Section III-B live grey-box source-modification test.

The paper's trace: 98.43% malware confidence originally, 88.88% after adding
the chosen API call once, 0% after adding it eight times.  The qualitative
check is that the engine's confidence decays monotonically-ish and ends far
below where it started.
"""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_live_greybox(benchmark, bench_context, results_dir):
    result = run_once(benchmark,
                      lambda: run_experiment("live_greybox", bench_context,
                                             max_repetitions=8))
    rendered = result.render()
    save_rendering(results_dir, "live_greybox", rendered)
    print("\n" + rendered)

    trace = result.trace
    assert result.confidence_decreases()
    # the engine's confidence after eight injected calls is far below the
    # original confidence (the paper reaches 0.0)
    assert trace.final_confidence < trace.original_confidence - 0.3
