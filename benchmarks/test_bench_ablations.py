"""Ablation benches for design choices called out in DESIGN.md.

These go beyond the paper's tables/figures:

* PCA component-count sweep for the dimensionality-reduction defense
  (the paper picks k = 19 without showing the sweep);
* distillation-temperature sweep;
* feature-squeezer comparison (bit-depth vs binarisation vs low-count
  squeezing);
* cross-attack generalisation of adversarial training (JSMA-trained defense
  evaluated against FGSM examples), the effect the paper alludes to when it
  notes adversarial training weakens under different attack methods.
"""

import numpy as np
from conftest import run_once, save_rendering

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.fgsm import FgsmAttack
from repro.defenses.adversarial_training import AdversarialTrainingDefense
from repro.defenses.dim_reduction import DimensionalityReductionDefense
from repro.defenses.distillation import DefensiveDistillation
from repro.defenses.feature_squeezing import (
    FeatureSqueezingDefense,
    binary_squeeze,
    bit_depth_squeeze,
    small_count_squeeze,
)
from repro.evaluation.reports import format_table


def test_bench_ablation_pca_components(benchmark, bench_context, results_dir):
    """Sweep the PCA defense's k and report clean/malware/advex rates."""
    advex = bench_context.greybox_adversarial(theta=0.1, gamma=0.02)
    corpus = bench_context.corpus
    clean = corpus.test.clean_only()
    malware = corpus.test.malware_only()

    def sweep():
        rows = []
        for k in (5, 10, 19, 40):
            defense = DimensionalityReductionDefense(
                n_components=k, scale=bench_context.scale, random_state=7)
            detector = defense.fit(corpus.train, corpus.validation)
            rows.append([k,
                         detector.report(clean).tnr,
                         detector.report(malware).tpr,
                         detector.detection_rate(advex.features)])
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(["k", "clean TNR", "malware TPR", "advEx TPR"], rows,
                            title="Ablation — PCA component count (paper uses k=19)")
    save_rendering(results_dir, "ablation_pca_components", rendered)
    print("\n" + rendered)
    advex_rates = [row[3] for row in rows]
    assert max(advex_rates) > bench_context.target_model.detection_rate(advex.features)


def test_bench_ablation_distillation_temperature(benchmark, bench_context, results_dir):
    """Sweep the distillation temperature (paper uses T = 50)."""
    advex = bench_context.greybox_adversarial(theta=0.1, gamma=0.02)
    corpus = bench_context.corpus
    clean = corpus.test.clean_only()
    malware = corpus.test.malware_only()

    def sweep():
        rows = []
        for temperature in (1.0, 10.0, 50.0):
            defense = DefensiveDistillation(temperature=temperature,
                                            scale=bench_context.scale, random_state=3)
            detector = defense.fit(corpus.train)
            rows.append([temperature,
                         detector.report(clean).tnr,
                         detector.report(malware).tpr,
                         detector.detection_rate(advex.features)])
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(["T", "clean TNR", "malware TPR", "advEx TPR"], rows,
                            title="Ablation — distillation temperature (paper uses T=50)")
    save_rendering(results_dir, "ablation_distillation_temperature", rendered)
    print("\n" + rendered)
    assert all(0.0 <= row[1] <= 1.0 for row in rows)


def test_bench_ablation_squeezers(benchmark, bench_context, results_dir):
    """Compare the three squeezing functions used by feature squeezing."""
    advex = bench_context.greybox_adversarial(theta=0.1, gamma=0.02)
    corpus = bench_context.corpus
    clean = corpus.test.clean_only()
    target = bench_context.target_model

    def sweep():
        rows = []
        for name, squeezer in (("bit_depth(3)", bit_depth_squeeze),
                               ("binarise", binary_squeeze),
                               ("low_count", small_count_squeeze)):
            defense = FeatureSqueezingDefense(squeezer=squeezer,
                                              false_positive_budget=0.05)
            detector = defense.fit(target.network, corpus.validation)
            rows.append([name,
                         detector.report(clean).tnr,
                         detector.detection_rate(advex.features)])
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(["squeezer", "clean TNR", "advEx TPR"], rows,
                            title="Ablation — feature squeezers")
    save_rendering(results_dir, "ablation_squeezers", rendered)
    print("\n" + rendered)
    assert all(0.0 <= row[1] <= 1.0 for row in rows)


def test_bench_ablation_adv_training_cross_attack(benchmark, bench_context, results_dir):
    """Adversarial training on JSMA examples, evaluated against FGSM examples."""
    corpus = bench_context.corpus
    target = bench_context.target_model
    malware = bench_context.attack_malware
    jsma_advex = bench_context.greybox_adversarial(theta=0.1, gamma=0.02)

    def evaluate():
        defense = AdversarialTrainingDefense(scale=bench_context.scale, random_state=11)
        detector = defense.fit(corpus.train, corpus.test, jsma_advex,
                               validation=corpus.validation)
        fgsm = FgsmAttack(target.network,
                          PerturbationConstraints(theta=0.15, gamma=0.05))
        fgsm_examples = fgsm.run(malware.features).adversarial
        return [
            ["JSMA advEx (seen attack family)",
             detector.detection_rate(jsma_advex.features),
             target.detection_rate(jsma_advex.features)],
            ["FGSM advEx (unseen attack family)",
             detector.detection_rate(fgsm_examples),
             target.detection_rate(fgsm_examples)],
        ]

    rows = run_once(benchmark, evaluate)
    rendered = format_table(["test set", "adv-trained TPR", "undefended TPR"], rows,
                            title="Ablation — adversarial training across attack methods")
    save_rendering(results_dir, "ablation_adv_training_cross_attack", rendered)
    print("\n" + rendered)
    # the defense must help on the attack it was trained with
    assert rows[0][1] > rows[0][2]


def test_bench_ablation_feature_scaling(benchmark, bench_context, results_dir):
    """Attack strength under the linear vs log count transformation.

    The defender's count normalisation determines how large a θ=0.1 step is
    relative to natural feature values; this ablation retrains the detector
    under both transformations on the same raw counts and re-runs the
    white-box attack at the paper's operating point.
    """
    from repro.attacks.jsma import JsmaAttack
    from repro.data.generator import CorpusGenerator
    from repro.features.transformation import CountTransformer
    from repro.models.target_model import TargetModel

    def evaluate():
        generator = CorpusGenerator(scale=bench_context.scale, seed=77,
                                    catalog=bench_context.generator.catalog)
        raw_train = generator.generate_attacker_corpus(
            bench_context.scale.train_clean, bench_context.scale.train_malware,
            pipeline=None, name="ablation_train")
        raw_eval = generator.generate_attacker_corpus(
            bench_context.scale.test_clean // 2, bench_context.scale.test_malware // 2,
            pipeline=None, name="ablation_eval")
        rows = []
        for scaling in ("linear", "log"):
            transformer = CountTransformer(scaling=scaling).fit(raw_train.features)
            train = raw_train.with_features(transformer.transform(raw_train.features))
            evaluation = raw_eval.with_features(transformer.transform(raw_eval.features))
            target = TargetModel.for_scale(bench_context.scale, random_state=5)
            target.fit(train, epochs=bench_context.scale.target_epochs,
                       batch_size=bench_context.scale.batch_size,
                       learning_rate=bench_context.scale.learning_rate, random_state=5)
            malware = evaluation.malware_only()
            attack = JsmaAttack(target.network,
                                PerturbationConstraints(theta=0.1, gamma=0.025))
            result = attack.run(malware.features)
            rows.append([scaling, target.detection_rate(malware.features),
                         result.detection_rate])
        return rows

    rows = run_once(benchmark, evaluate)
    rendered = format_table(["count scaling", "baseline detection", "detection under JSMA"],
                            rows, title="Ablation — count-transformation scaling")
    save_rendering(results_dir, "ablation_feature_scaling", rendered)
    print("\n" + rendered)
    linear_row = [row for row in rows if row[0] == "linear"][0]
    assert linear_row[2] < linear_row[1]
