"""Bench: regenerate Table III (excerpt of the 491 API features)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table3_features(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("table3", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "table3_features", rendered)
    print("\n" + rendered)
    assert result.matches_paper()
    assert result.n_features == 491
