"""Bench: regenerate Table IV (substitute model architecture and training)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table4_substitute(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("table4", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "table4_substitute", rendered)
    print("\n" + rendered)
    assert result.depth_matches()
    assert result.final_train_accuracy > 0.9
