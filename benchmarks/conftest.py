"""Shared state for the benchmark harness.

Every bench regenerates one table or figure of the paper.  The experiment
context (corpus + trained models) is built once per session at the scale
selected by ``REPRO_SCALE`` (default ``small``) so that individual benches
measure the cost of *their* experiment, not of retraining the models.

The context is additionally backed by a persistent
:class:`~repro.utils.artifact_cache.ArtifactCache` (``benchmarks/.cache``
unless ``REPRO_CACHE_DIR`` points elsewhere; set ``REPRO_BENCH_NO_CACHE=1``
to disable), so warm benchmark sessions skip corpus generation and model
retraining entirely and go straight to the measured experiment.

Rendered outputs are written to ``benchmarks/results/<experiment>.txt`` so
the regenerated rows/series can be inspected after a run and compared with
the paper's values (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import default_profile
from repro.experiments.context import ExperimentContext
from repro.utils.artifact_cache import ArtifactCache

RESULTS_DIR = Path(__file__).parent / "results"

#: Master seed used by the benchmark harness (EXPERIMENTS.md records results
#: from this seed at the ``small`` scale).
BENCH_SEED = 2019


@pytest.fixture(scope="session")
def bench_scale():
    """Scale profile used by the benchmark harness."""
    return default_profile()


@pytest.fixture(scope="session")
def bench_cache():
    """Persistent artifact cache shared by benchmark sessions (or None)."""
    if os.environ.get("REPRO_BENCH_NO_CACHE") == "1":
        return None
    root = os.environ.get("REPRO_CACHE_DIR", str(Path(__file__).parent / ".cache"))
    return ArtifactCache(root)


@pytest.fixture(scope="session")
def bench_context(bench_scale, bench_cache):
    """Shared experiment context (corpus and models built lazily, once)."""
    return ExperimentContext(scale=bench_scale, seed=BENCH_SEED, cache=bench_cache)


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_rendering(results_dir: Path, name: str, rendered: str) -> None:
    """Persist a rendered experiment output for post-run inspection."""
    (results_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments train models and run full attack sweeps; repeating them
    dozens of times per bench would make the harness needlessly slow, so each
    bench measures a single end-to-end execution.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
