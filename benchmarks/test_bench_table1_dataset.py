"""Bench: regenerate Table I (dataset composition)."""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_table1_dataset(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("table1", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "table1_dataset", rendered)
    print("\n" + rendered)
    assert result.class_balance_preserved()
    assert result.measured["train"]["total"] == bench_context.scale.train_total
    assert result.measured["test"]["total"] == bench_context.scale.test_total
