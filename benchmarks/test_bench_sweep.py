"""Bench: trajectory-replay γ-sweeps vs the per-point seed path.

The paper's central artifact — the Figure 3/4 security curves — used to cost
one complete JSMA run per grid point.  The replay engine
(:mod:`repro.evaluation.sweep`) runs the attack once at the largest γ with a
trajectory recorder and slices the log per operating point, scoring all
points × models through one stacked predict per model.

Measured here, on the paper γ grid (7 points):

* replay vs the *seed-equivalent* per-point sweep (attack per point,
  separate predicts per point × model, float-round-tripped evaded counts) —
  the configuration PR 5 replaced — gated at ≥ 3× for the white-box curve;
* replay vs the current fused per-point fallback (``strategy="per_point"``),
  recorded for both the white-box and the grey-box transfer settings;
* parity: the replayed curve must be byte-identical to the per-point curves
  (``as_rows`` and rendered text) — ``parity_mismatches == 0`` is asserted
  unconditionally, independent of any timing.

Numbers land in ``BENCH_sweep.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import save_rendering

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.evaluation.reports import render_security_curve
from repro.evaluation.security_curve import (
    PAPER_GAMMA_GRID,
    PAPER_THETA_GRID,
    SecurityCurve,
    SecurityCurvePoint,
    gamma_sweep,
    theta_sweep,
)
from repro.nn.metrics import detection_rate

BENCH_JSON = Path(__file__).parents[1] / "BENCH_sweep.json"

_records: dict = {}


def _record(name: str, **values) -> None:
    _records[name] = {key: round(val, 6) if isinstance(val, float) else val
                      for key, val in values.items()}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    if not _records:
        return
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except ValueError:
            existing = {}
    existing.update(_records)
    BENCH_JSON.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def best_of(func, repeats: int = 3):
    """Best wall time over ``repeats`` single calls (plus the last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _seed_equivalent_gamma_sweep(attack_factory, malware_features, models,
                                 theta, gamma_values) -> SecurityCurve:
    """The pre-replay sweep loop, verbatim: attack + predicts per point."""
    n_features = malware_features.shape[1]
    curve = SecurityCurve(swept_parameter="gamma", fixed_value=theta)
    for gamma in gamma_values:
        constraints = PerturbationConstraints(theta=float(theta), gamma=float(gamma))
        attack = attack_factory(constraints)
        curve.attack_name = attack.name
        result = attack.run(malware_features)
        rates = {name: detection_rate(model.predict(result.adversarial))
                 for name, model in models.items()}
        evaded = {name: int(round((1.0 - rate) * result.n_samples))
                  for name, rate in rates.items()}
        curve.points.append(SecurityCurvePoint(
            theta=float(theta), gamma=float(gamma),
            n_perturbed_features=constraints.max_features(n_features),
            detection_rates=rates,
            mean_l2_distance=result.mean_l2_distance,
            evaded_counts=evaded,
            swept_parameter="gamma",
        ))
    return curve


def _parity_mismatches(replayed: SecurityCurve, reference: SecurityCurve) -> int:
    """Number of differing operating points (rows compared field-by-field)."""
    mismatches = sum(got != want for got, want in zip(replayed.as_rows(),
                                                      reference.as_rows()))
    mismatches += abs(len(replayed.points) - len(reference.points))
    if render_security_curve(replayed) != render_security_curve(reference):
        mismatches = max(mismatches, 1)
    return mismatches


@pytest.fixture(scope="module")
def sweep_inputs(bench_context):
    """Trained models + attack malware shared by every sweep bench."""
    return (bench_context.target_model.network,
            bench_context.substitute_model.network,
            bench_context.attack_malware.features)


def test_bench_gamma_replay_whitebox(sweep_inputs, results_dir):
    """Figure 3(a) configuration: replay >= 3x the seed per-point path."""
    target, _, malware = sweep_inputs
    models = {"target": target}
    grid = list(PAPER_GAMMA_GRID)

    def factory(constraints):
        return JsmaAttack(target, constraints=constraints)

    # The >= 3x gate below is a hard CI assert: take the best of five runs
    # for both sides so scheduler noise cannot fake a regression.
    replay_s, replayed = best_of(lambda: gamma_sweep(
        factory, malware, models, theta=0.1, gamma_values=grid,
        strategy="replay"), repeats=5)
    seed_s, seed_curve = best_of(lambda: _seed_equivalent_gamma_sweep(
        factory, malware, models, theta=0.1, gamma_values=grid), repeats=5)
    fused_s, fused_curve = best_of(lambda: gamma_sweep(
        factory, malware, models, theta=0.1, gamma_values=grid,
        strategy="per_point"))

    mismatches = max(_parity_mismatches(replayed, seed_curve),
                     _parity_mismatches(replayed, fused_curve))
    speedup_vs_seed = seed_s / replay_s
    speedup_vs_fused = fused_s / replay_s
    _record("gamma_sweep_whitebox", replay_s=replay_s, seed_per_point_s=seed_s,
            fused_per_point_s=fused_s, speedup_vs_seed=speedup_vs_seed,
            speedup_vs_fused=speedup_vs_fused, grid_points=len(grid),
            n_samples=malware.shape[0], parity_mismatches=mismatches)
    save_rendering(results_dir, "sweep_gamma_whitebox",
                   render_security_curve(
                       replayed, title="white-box gamma sweep (replayed)"))
    print(f"\ngamma replay (white-box): {replay_s * 1e3:.1f} ms vs seed "
          f"per-point {seed_s * 1e3:.1f} ms ({speedup_vs_seed:.2f}x), fused "
          f"per-point {fused_s * 1e3:.1f} ms ({speedup_vs_fused:.2f}x)")

    # Parity gates first, unconditionally: a fast wrong curve is worthless.
    assert mismatches == 0
    assert speedup_vs_seed >= 3.0


def test_bench_gamma_replay_greybox_transfer(sweep_inputs):
    """Figure 4(a) configuration: full-budget crafting, two scored models."""
    target, substitute, malware = sweep_inputs
    models = {"substitute": substitute, "target": target}
    grid = list(PAPER_GAMMA_GRID)

    def factory(constraints):
        return JsmaAttack(substitute, constraints=constraints, early_stop=False)

    replay_s, replayed = best_of(lambda: gamma_sweep(
        factory, malware, models, theta=0.1, gamma_values=grid,
        strategy="replay"))
    seed_s, seed_curve = best_of(lambda: _seed_equivalent_gamma_sweep(
        factory, malware, models, theta=0.1, gamma_values=grid))

    mismatches = _parity_mismatches(replayed, seed_curve)
    speedup = seed_s / replay_s
    _record("gamma_sweep_greybox_transfer", replay_s=replay_s,
            seed_per_point_s=seed_s, speedup_vs_seed=speedup,
            grid_points=len(grid), n_samples=malware.shape[0],
            parity_mismatches=mismatches)
    print(f"\ngamma replay (grey-box transfer): {replay_s * 1e3:.1f} ms vs "
          f"seed per-point {seed_s * 1e3:.1f} ms ({speedup:.2f}x)")

    assert mismatches == 0
    # Full-budget crafting reduces the attack-compute ratio to the grid's
    # sum-of-budgets over max-budget (~3.4x here); the shared stacked-scoring
    # cost dilutes it further, so the gate sits below the white-box one.
    assert speedup >= 1.8


def test_bench_theta_sweep_fused_scoring(sweep_inputs):
    """θ-sweeps keep per-point crafting but share the fused scoring path."""
    target, _, malware = sweep_inputs
    models = {"target": target}
    thetas = list(PAPER_THETA_GRID)

    def factory(constraints):
        return JsmaAttack(target, constraints=constraints)

    fused_s, fused = best_of(lambda: theta_sweep(
        factory, malware, models, gamma=0.025, theta_values=thetas), repeats=2)

    def seed_theta_sweep():
        curve = SecurityCurve(swept_parameter="theta", fixed_value=0.025)
        for theta in thetas:
            constraints = PerturbationConstraints(theta=float(theta), gamma=0.025)
            attack = factory(constraints)
            curve.attack_name = attack.name
            result = attack.run(malware)
            rates = {name: detection_rate(model.predict(result.adversarial))
                     for name, model in models.items()}
            curve.points.append(SecurityCurvePoint(
                theta=float(theta), gamma=0.025,
                n_perturbed_features=constraints.max_features(malware.shape[1]),
                detection_rates=rates,
                mean_l2_distance=result.mean_l2_distance,
                evaded_counts={name: int(round((1.0 - rate) * result.n_samples))
                               for name, rate in rates.items()},
                swept_parameter="theta"))
        return curve

    seed_s, seed_curve = best_of(seed_theta_sweep, repeats=2)
    mismatches = _parity_mismatches(fused, seed_curve)
    _record("theta_sweep_fused", fused_s=fused_s, seed_per_point_s=seed_s,
            speedup_vs_seed=seed_s / fused_s, grid_points=len(thetas),
            n_samples=malware.shape[0], parity_mismatches=mismatches)
    print(f"\ntheta sweep: fused {fused_s * 1e3:.1f} ms vs seed "
          f"{seed_s * 1e3:.1f} ms ({seed_s / fused_s:.2f}x)")

    # θ changes step content, so there is no replay here — only the scoring
    # fusion.  Parity is the hard requirement; the timing is recorded.
    assert mismatches == 0


def test_bench_replayed_views_need_no_attack(sweep_inputs):
    """Deriving more operating points off a ReplaySweep costs ~no compute."""
    from repro.evaluation.sweep import replay_gamma_sweep

    target, _, malware = sweep_inputs

    def factory(constraints):
        return JsmaAttack(target, constraints=constraints, early_stop=False)

    sweep = replay_gamma_sweep(factory, malware, {"target": target},
                               theta=0.1, gamma_values=list(PAPER_GAMMA_GRID))
    attack_s, _ = best_of(lambda: factory(
        PerturbationConstraints(theta=0.1, gamma=0.02)).run(malware))
    view_s, view = best_of(lambda: sweep.result_at(0.02))
    direct = factory(PerturbationConstraints(theta=0.1, gamma=0.02)).run(malware)
    assert np.array_equal(view.adversarial, direct.adversarial)
    speedup = attack_s / view_s
    _record("replayed_operating_point", view_s=view_s, fresh_attack_s=attack_s,
            speedup=speedup)
    print(f"\noperating-point view: {view_s * 1e3:.2f} ms vs fresh attack "
          f"{attack_s * 1e3:.1f} ms ({speedup:.1f}x)")
    assert speedup >= 3.0
