"""Bench: regenerate Figure 5 (L2 distances across populations).

Qualitative check (Section III-B): L2(malware, adversarial) <
L2(malware, clean) < L2(clean, adversarial), with the adversarial distance
growing as the attack strength increases — adversarial examples live in a
blind spot away from the clean population, not on the decision boundary.
"""

from conftest import run_once, save_rendering

from repro.experiments import run_experiment


def test_bench_figure5_l2(benchmark, bench_context, results_dir):
    result = run_once(benchmark, lambda: run_experiment("figure5", bench_context))
    rendered = result.render()
    save_rendering(results_dir, "figure5_l2", rendered)
    print("\n" + rendered)
    assert result.ordering_holds_everywhere()
    assert result.distances_grow_with_strength()
