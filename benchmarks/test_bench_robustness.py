"""Ablation bench: per-sample minimal evasion budget, undefended vs defended.

This extends the paper's aggregate security curves with a per-sample view:
how many added API features does JSMA need to evade (a) the undefended
detector and (b) the adversarially-trained detector?  The paper's headline
"modifying one bit in the feature vector can bypass the detector" shows up as
the lower tail of the undefended distribution.
"""

from conftest import run_once, save_rendering

from repro.defenses.adversarial_training import AdversarialTrainingDefense
from repro.evaluation.reports import format_table
from repro.evaluation.robustness import compare_robustness


def test_bench_robustness_minimal_budget(benchmark, bench_context, results_dir):
    context = bench_context
    advex = context.greybox_adversarial(theta=0.1, gamma=0.02)

    def evaluate():
        defense = AdversarialTrainingDefense(scale=context.scale, random_state=17)
        defended = defense.fit(context.corpus.train, context.corpus.test, advex,
                               validation=context.corpus.validation)
        models = {
            "undefended target": context.target_model.network,
            "adversarially trained": defense.model.network,
        }
        return compare_robustness(models, context.attack_malware.features,
                                  theta=0.1, max_features=30)

    rows = run_once(benchmark, evaluate)
    table_rows = [[row["model"], row["evadable_fraction"], row["median_budget"],
                   row["evadable_with_1_feature"], row["evadable_with_2_features"]]
                  for row in rows]
    rendered = format_table(
        ["model", "evadable <=30 feats", "median budget", "<=1 feat", "<=2 feats"],
        table_rows, title="Ablation — minimal evasion budget (theta=0.1)")
    save_rendering(results_dir, "ablation_robustness_budget", rendered)
    print("\n" + rendered)

    undefended, defended = rows[0], rows[1]
    # the undefended detector is evadable for most samples within 30 features
    assert undefended["evadable_fraction"] > 0.6
    # Note: this is an *adaptive white-box* attacker re-optimising against the
    # defended model, the setting the paper's conclusion flags as an open
    # challenge — adversarial training is not expected to reduce the evadable
    # fraction here (it defends against *transferred* examples, Table VI).
    assert defended["evadable_fraction"] <= undefended["evadable_fraction"] + 0.05
